"""Experiment runner: execute estimators over streams with checkpoints.

This is the piece of glue every benchmark and example shares: given a
stream and an estimator (or a registry name), run the stream through it,
optionally query the estimate at mid-stream checkpoints (the paper's
"report at any point" capability), and collect the estimate, the exact
ground truth, the relative error, and the space consumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..estimators.base import CardinalityEstimator, TurnstileEstimator
from ..estimators.registry import make_f0_estimator, make_l0_estimator
from ..exceptions import ParameterError, UpdateError
from ..streams.model import MaterializedStream
from .metrics import relative_error

__all__ = ["CheckpointResult", "RunResult", "run_f0", "run_l0", "run_f0_by_name", "run_l0_by_name"]


@dataclass
class CheckpointResult:
    """Estimate vs. truth at one mid-stream checkpoint."""

    position: int
    truth: int
    estimate: float
    relative_error: float


@dataclass
class RunResult:
    """Outcome of running one estimator over one stream.

    Attributes:
        algorithm: the estimator's declared name.
        stream: the stream's name.
        truth: exact F0/L0 of the full stream.
        estimate: the estimator's final output.
        relative_error: ``|estimate - truth| / truth``.
        space_bits: the sketch size after the run.
        checkpoints: optional mid-stream measurements.
    """

    algorithm: str
    stream: str
    truth: int
    estimate: float
    relative_error: float
    space_bits: int
    checkpoints: List[CheckpointResult] = field(default_factory=list)


def _run(
    estimator,
    stream: MaterializedStream,
    checkpoint_positions: Optional[Sequence[int]],
    turnstile: bool,
) -> RunResult:
    positions = list(checkpoint_positions) if checkpoint_positions else []
    truths = stream.ground_truth_at(positions) if positions else []
    checkpoints: List[CheckpointResult] = []
    next_checkpoint = 0
    for index, update in enumerate(stream):
        if turnstile:
            estimator.update(update.item, update.delta)
        else:
            if update.delta != 1:
                raise UpdateError(
                    "insertion-only run received a turnstile update at position %d" % index
                )
            estimator.update(update.item)
        while next_checkpoint < len(positions) and positions[next_checkpoint] == index + 1:
            truth = truths[next_checkpoint]
            estimate = estimator.estimate()
            checkpoints.append(
                CheckpointResult(
                    position=index + 1,
                    truth=truth,
                    estimate=estimate,
                    relative_error=relative_error(estimate, truth) if truth else 0.0,
                )
            )
            next_checkpoint += 1
    truth = stream.ground_truth()
    estimate = estimator.estimate()
    return RunResult(
        algorithm=getattr(estimator, "name", type(estimator).__name__),
        stream=stream.name,
        truth=truth,
        estimate=estimate,
        relative_error=relative_error(estimate, truth) if truth else 0.0,
        space_bits=estimator.space_bits(),
        checkpoints=checkpoints,
    )


def run_f0(
    estimator: CardinalityEstimator,
    stream: MaterializedStream,
    checkpoint_positions: Optional[Sequence[int]] = None,
) -> RunResult:
    """Run an insertion-only estimator over a stream."""
    if not stream.is_insertion_only():
        raise ParameterError("run_f0 requires an insertion-only stream")
    return _run(estimator, stream, checkpoint_positions, turnstile=False)


def run_l0(
    estimator: TurnstileEstimator,
    stream: MaterializedStream,
    checkpoint_positions: Optional[Sequence[int]] = None,
) -> RunResult:
    """Run a turnstile estimator over a stream."""
    return _run(estimator, stream, checkpoint_positions, turnstile=True)


def run_f0_by_name(
    name: str,
    stream: MaterializedStream,
    eps: float,
    seed: Optional[int] = None,
    checkpoint_positions: Optional[Sequence[int]] = None,
) -> RunResult:
    """Instantiate a registered F0 algorithm and run it over ``stream``."""
    estimator = make_f0_estimator(name, stream.universe_size, eps, seed)
    return run_f0(estimator, stream, checkpoint_positions)


def run_l0_by_name(
    name: str,
    stream: MaterializedStream,
    eps: float,
    seed: Optional[int] = None,
    checkpoint_positions: Optional[Sequence[int]] = None,
) -> RunResult:
    """Instantiate a registered L0 algorithm and run it over ``stream``."""
    magnitude_bound = max(len(stream) * stream.max_update_magnitude(), 1)
    estimator = make_l0_estimator(name, stream.universe_size, eps, magnitude_bound, seed)
    return run_l0(estimator, stream, checkpoint_positions)
