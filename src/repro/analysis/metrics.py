"""Accuracy metrics for estimator evaluation.

The paper's guarantees are of the form "the output is within ``(1 +/- eps)``
of the truth with probability at least 2/3"; the corresponding empirical
quantities are the per-trial relative error, its distribution across seeds,
and the fraction of trials that landed inside the ``(1 +/- eps)`` band.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..exceptions import ParameterError

__all__ = ["relative_error", "ErrorSummary", "summarize_errors", "within_band_rate"]


def relative_error(estimate: float, truth: float) -> float:
    """Return ``|estimate - truth| / truth`` (0 when both are 0)."""
    if truth < 0:
        raise ParameterError("truth must be non-negative")
    if truth == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(estimate - truth) / truth


def within_band_rate(estimates: Sequence[float], truth: float, eps: float) -> float:
    """Return the fraction of estimates inside ``[(1-eps) truth, (1+eps) truth]``."""
    if not estimates:
        raise ParameterError("within_band_rate requires at least one estimate")
    if not eps > 0:
        raise ParameterError("eps must be positive")
    hits = sum(
        1 for value in estimates if (1.0 - eps) * truth <= value <= (1.0 + eps) * truth
    )
    return hits / len(estimates)


@dataclass
class ErrorSummary:
    """Summary statistics of relative errors across independent trials.

    Attributes:
        trials: number of trials aggregated.
        mean: mean relative error.
        median: median relative error.
        p90: 90th-percentile relative error.
        maximum: largest relative error observed.
        rmse: root-mean-square relative error.
        mean_bias: mean of the *signed* relative error (positive =
            overestimation), useful for spotting biased estimators.
    """

    trials: int
    mean: float
    median: float
    p90: float
    maximum: float
    rmse: float
    mean_bias: float

    def as_row(self) -> List[str]:
        """Return the summary formatted as table cells."""
        return [
            "%d" % self.trials,
            "%.4f" % self.mean,
            "%.4f" % self.median,
            "%.4f" % self.p90,
            "%.4f" % self.maximum,
            "%.4f" % self.rmse,
            "%+.4f" % self.mean_bias,
        ]


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        raise ParameterError("percentile of empty sequence")
    index = min(int(math.ceil(fraction * len(sorted_values))) - 1, len(sorted_values) - 1)
    return sorted_values[max(index, 0)]


def summarize_errors(estimates: Sequence[float], truth: float) -> ErrorSummary:
    """Summarise relative errors of ``estimates`` against a single ``truth``."""
    if not estimates:
        raise ParameterError("summarize_errors requires at least one estimate")
    if truth <= 0:
        raise ParameterError("truth must be positive")
    errors = sorted(relative_error(value, truth) for value in estimates)
    signed = [(value - truth) / truth for value in estimates]
    count = len(errors)
    mean = sum(errors) / count
    median = errors[count // 2] if count % 2 else (errors[count // 2 - 1] + errors[count // 2]) / 2
    rmse = math.sqrt(sum(error * error for error in errors) / count)
    return ErrorSummary(
        trials=count,
        mean=mean,
        median=median,
        p90=_percentile(errors, 0.9),
        maximum=errors[-1],
        rmse=rmse,
        mean_bias=sum(signed) / count,
    )
