"""Experiment harness: metrics, runners, sweeps, and report tables.

* :mod:`repro.analysis.metrics` — relative error, summaries, within-band rates.
* :mod:`repro.analysis.runner` — stream -> estimator execution with checkpoints.
* :mod:`repro.analysis.sweeps` — (algorithm, eps, seed) grids for the benchmarks.
* :mod:`repro.analysis.tables` — Figure-1-style plain-text / Markdown tables.
"""

from .metrics import ErrorSummary, relative_error, summarize_errors, within_band_rate
from .runner import (
    CheckpointResult,
    KeyedRunResult,
    RunResult,
    run_f0,
    run_f0_by_name,
    run_keyed_f0,
    run_keyed_l0,
    run_l0,
    run_l0_by_name,
)
from .sweeps import (
    KeyedSweepPoint,
    SweepPoint,
    WindowedSweepPoint,
    accuracy_sweep,
    format_workload_grid,
    keyed_accuracy_sweep,
    l0_accuracy_sweep,
    resolve_workload_factory,
    space_sweep,
    windowed_accuracy_sweep,
    workload_class_grid,
)
from .tables import Table, format_bits

__all__ = [
    "ErrorSummary",
    "relative_error",
    "summarize_errors",
    "within_band_rate",
    "CheckpointResult",
    "KeyedRunResult",
    "RunResult",
    "run_f0",
    "run_f0_by_name",
    "run_keyed_f0",
    "run_keyed_l0",
    "run_l0",
    "run_l0_by_name",
    "KeyedSweepPoint",
    "SweepPoint",
    "WindowedSweepPoint",
    "accuracy_sweep",
    "format_workload_grid",
    "keyed_accuracy_sweep",
    "l0_accuracy_sweep",
    "resolve_workload_factory",
    "space_sweep",
    "windowed_accuracy_sweep",
    "workload_class_grid",
    "Table",
    "format_bits",
]
