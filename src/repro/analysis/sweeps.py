"""Parameter sweeps: the workhorse behind the accuracy and space experiments.

A sweep runs a set of algorithms over a grid of ``(eps, workload, seed)``
configurations, aggregates the per-configuration relative errors, and
produces the rows the benchmark tables print.  It is deliberately plain
(nested loops, explicit dataclasses) so a reader can audit exactly what was
measured.

Sweeps parallelise at *trial* granularity: every ``(algorithm, eps,
seed)`` cell is an independent run over the same replayed stream, so
``workers=N`` fans the grid out over the process-wide persistent pool
(:mod:`repro.parallel.pool` — the stream is staged once and loaded once
per worker) and collects the identical per-trial numbers in the
identical order.  This is the right axis for sweeps — it parallelises
F0 and L0 runs alike and needs no merge support — whereas
:mod:`repro.analysis.runner` offers *intra*-run sharding for single
long streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..exceptions import ParameterError
from ..parallel import discard_shared, get_pool, load_shared, stage_shared
from ..streams.model import MaterializedStream
from ..streams.workloads import WorkloadScale, workload_class
from .metrics import ErrorSummary, summarize_errors, within_band_rate
from .runner import run_f0_by_name, run_keyed_f0, run_keyed_l0, run_l0_by_name

__all__ = [
    "DEFAULT_SWEEP_BATCH",
    "SweepPoint",
    "KeyedSweepPoint",
    "WindowedSweepPoint",
    "accuracy_sweep",
    "l0_accuracy_sweep",
    "keyed_accuracy_sweep",
    "windowed_accuracy_sweep",
    "space_sweep",
    "resolve_workload_factory",
    "workload_class_grid",
    "format_workload_grid",
]

#: Chunk length used when sweeps drive sketches through ``update_batch``.
DEFAULT_SWEEP_BATCH = 4096

StreamFactory = Callable[[int], MaterializedStream]

#: A stream/workload axis value: either a factory callable (seed ->
#: workload) or the name of a registered workload-zoo class.
WorkloadSpec = object


def resolve_workload_factory(
    spec,
    shape: str,
    scale: Optional[WorkloadScale] = None,
    turnstile: Optional[bool] = None,
) -> Callable[[int], "object"]:
    """Turn a sweep's workload axis value into a seed-taking factory.

    Every sweep accepts either a factory callable (the historical
    contract) or a workload-zoo class name (``"skew"``, ``"churn"``,
    ``"bursty"``, ``"cold-keys"``, ``"adversarial"`` — see
    :func:`repro.streams.workloads.workload_class_names`); names resolve
    through the zoo registry to the sweep's input shape.

    Args:
        spec: a callable or a zoo class name.
        shape: ``"stream"``, ``"keyed"``, or ``"windowed"``.
        scale: optional :class:`~repro.streams.workloads.WorkloadScale`
            for name-resolved classes (callables are returned as-is).
        turnstile: when a bool, require the named class's turnstile flag
            to match (``False`` rejects the churn class from F0 sweeps
            with a useful message instead of a mid-run update error).
    """
    if callable(spec):
        return spec
    if not isinstance(spec, str):
        raise ParameterError(
            "workload axis values must be factories or zoo class names, got %r"
            % type(spec).__name__
        )
    cls = workload_class(spec)
    if turnstile is not None and cls.turnstile != turnstile:
        if cls.turnstile:
            raise ParameterError(
                "workload class %r is turnstile (carries deletions); sweep it "
                "with the L0 harness (l0_accuracy_sweep or the L0-family keyed "
                "/ windowed modes)" % spec
            )
        raise ParameterError(
            "workload class %r is insertion-only; this sweep mode expects a "
            "turnstile class" % spec
        )
    builder = {
        "stream": cls.stream,
        "keyed": cls.keyed,
        "windowed": cls.windowed,
    }.get(shape)
    if builder is None:
        raise ParameterError(
            "unknown workload shape %r (known: stream, keyed, windowed)" % (shape,)
        )
    return lambda seed: builder(seed, scale)


@dataclass
class SweepPoint:
    """Aggregated result of one (algorithm, eps) cell of a sweep.

    Attributes:
        algorithm: registry name of the algorithm.
        eps: the accuracy target used to size the sketch.
        truth: the workload's exact F0/L0.
        summary: error statistics across seeds.
        within_band: fraction of trials inside ``(1 +/- eps)``.
        within_2band: fraction of trials inside ``(1 +/- 2 eps)``.
        mean_space_bits: average sketch size across seeds.
    """

    algorithm: str
    eps: float
    truth: int
    summary: ErrorSummary
    within_band: float
    within_2band: float
    mean_space_bits: float


def _f0_trial(args: Tuple[str, float, int, Optional[int], str]) -> Tuple[float, int]:
    algorithm, eps, seed, batch_size, token = args
    result = run_f0_by_name(
        algorithm, load_shared(token), eps, seed=seed, batch_size=batch_size
    )
    return result.estimate, result.space_bits


def _l0_trial(args: Tuple[str, float, int, Optional[int], str]) -> Tuple[float, int]:
    algorithm, eps, seed, batch_size, token = args
    result = run_l0_by_name(
        algorithm, load_shared(token), eps, seed=seed, batch_size=batch_size
    )
    return result.estimate, result.space_bits


def _pooled_trials(
    trial,
    grid: Sequence[Tuple],
    stream: MaterializedStream,
    workers: int,
) -> List[Tuple[float, int]]:
    """Run the trial grid over the persistent pool, preserving grid order.

    The (potentially large) replay stream is staged once on disk
    (:func:`repro.parallel.stage_shared`) and each trial carries only
    its token; workers load and memoize the stream per process.  This
    replaces the pool-initializer idiom — the shared persistent pool is
    already running, so it cannot take per-sweep initializers.
    """
    token = stage_shared(stream)
    try:
        pool = get_pool(workers)
        return list(pool.map(trial, [args + (token,) for args in grid]))
    finally:
        discard_shared(token)


def _collect_points(
    grid: Sequence[Tuple],
    outcomes: Sequence[Tuple[float, int]],
    per_cell: int,
    truth: int,
) -> List[SweepPoint]:
    """Reassemble flat per-trial outcomes into per-(algorithm, eps) points.

    ``grid`` is ordered eps-major, algorithm-minor, seed-innermost, so
    consecutive blocks of ``per_cell`` outcomes belong to one cell.
    """
    points: List[SweepPoint] = []
    for index in range(0, len(grid), per_cell):
        algorithm, eps = grid[index][0], grid[index][1]
        cell = outcomes[index : index + per_cell]
        estimates = [estimate for estimate, _ in cell]
        spaces = [space for _, space in cell]
        points.append(_aggregate(algorithm, eps, truth, estimates, spaces))
    return points


def _aggregate(
    algorithm: str,
    eps: float,
    truth: int,
    estimates: Sequence[float],
    spaces: Sequence[int],
) -> SweepPoint:
    return SweepPoint(
        algorithm=algorithm,
        eps=eps,
        truth=truth,
        summary=summarize_errors(estimates, truth),
        within_band=within_band_rate(estimates, truth, eps),
        within_2band=within_band_rate(estimates, truth, 2 * eps),
        mean_space_bits=sum(spaces) / len(spaces),
    )


def accuracy_sweep(
    algorithms: Sequence[str],
    stream_factory: StreamFactory,
    eps_values: Sequence[float],
    seeds: Sequence[int],
    stream_seed: int = 12345,
    batch_size: Optional[int] = DEFAULT_SWEEP_BATCH,
    workers: Optional[int] = None,
    workload_scale: Optional[WorkloadScale] = None,
) -> List[SweepPoint]:
    """Run an F0 accuracy sweep.

    Args:
        algorithms: registry names to evaluate.
        stream_factory: callable building the workload from a seed (the same
            workload seed is used for every algorithm so they see identical
            streams), or a workload-zoo class name (resolved via
            :func:`resolve_workload_factory`; turnstile classes are
            rejected — sweep those with :func:`l0_accuracy_sweep`).
        eps_values: accuracy targets to sweep.
        seeds: estimator seeds (one independent trial per seed).
        stream_seed: the workload seed.
        batch_size: chunk length for batched sketch driving (sweeps replay
            the same stream many times, so the vectorized ``update_batch``
            path is the default; pass ``None`` to force the scalar loop).
            Results are identical by the batch-API contract, up to the
            one documented deviation: the KNW Figure 3 FAIL test runs at
            chunk granularity (see
            :meth:`repro.core.knw.KNWFigure3Sketch.update_batch`).
        workers: when > 1, distribute the ``(algorithm, eps, seed)``
            trials over this many worker processes.  Every trial is
            seeded, so the sweep output is identical to the serial one.
        workload_scale: size knobs for name-resolved zoo classes.

    Returns:
        One :class:`SweepPoint` per (algorithm, eps) pair.
    """
    if not algorithms or not eps_values or not seeds:
        raise ParameterError("accuracy_sweep needs algorithms, eps values, and seeds")
    stream_factory = resolve_workload_factory(
        stream_factory, "stream", workload_scale, turnstile=False
    )
    stream = stream_factory(stream_seed)
    truth = stream.ground_truth()
    grid = [
        (algorithm, eps, seed, batch_size)
        for eps in eps_values
        for algorithm in algorithms
        for seed in seeds
    ]
    if workers is not None and workers > 1:
        outcomes = _pooled_trials(_f0_trial, grid, stream, workers)
    else:
        outcomes = []
        for algorithm, eps, seed, chunk in grid:
            result = run_f0_by_name(
                algorithm, stream, eps, seed=seed, batch_size=chunk
            )
            outcomes.append((result.estimate, result.space_bits))
    return _collect_points(grid, outcomes, len(seeds), truth)


def l0_accuracy_sweep(
    algorithms: Sequence[str],
    stream_factory: StreamFactory,
    eps_values: Sequence[float],
    seeds: Sequence[int],
    stream_seed: int = 12345,
    batch_size: Optional[int] = DEFAULT_SWEEP_BATCH,
    workers: Optional[int] = None,
    workload_scale: Optional[WorkloadScale] = None,
) -> List[SweepPoint]:
    """Run an L0 accuracy sweep (same contract as :func:`accuracy_sweep`).

    Like the F0 sweep, trials drive their sketches through the batched
    turnstile ``update_batch`` path by default — the L0 batch pipeline is
    bit-identical to the scalar loop, so only the wall-clock changes.
    Trial-level ``workers`` parallelism applies here too (and remains the
    natural axis for sweeps; single long L0 runs can instead shard
    *within* a run via ``run_l0(workers=...)``, the L0 sketches being
    linear and hence mergeable).  The workload axis accepts zoo class
    names; every class works here, since insertion-only streams are
    legal turnstile inputs (all deltas ``+1``).
    """
    if not algorithms or not eps_values or not seeds:
        raise ParameterError("l0_accuracy_sweep needs algorithms, eps values, and seeds")
    stream_factory = resolve_workload_factory(
        stream_factory, "stream", workload_scale
    )
    stream = stream_factory(stream_seed)
    truth = stream.ground_truth()
    grid = [
        (algorithm, eps, seed, batch_size)
        for eps in eps_values
        for algorithm in algorithms
        for seed in seeds
    ]
    if workers is not None and workers > 1:
        outcomes = _pooled_trials(_l0_trial, grid, stream, workers)
    else:
        outcomes = []
        for algorithm, eps, seed, chunk in grid:
            result = run_l0_by_name(
                algorithm, stream, eps, seed=seed, batch_size=chunk
            )
            outcomes.append((result.estimate, result.space_bits))
    return _collect_points(grid, outcomes, len(seeds), truth)


@dataclass
class KeyedSweepPoint:
    """Aggregated result of one (family, eps) cell of a keyed sweep.

    Attributes:
        family: the sketch-store family.
        eps: the per-key accuracy target.
        key_count: distinct keys in the workload.
        mean_truth: mean exact per-key distinct count.
        mean_relative_error: per-key relative error, averaged over keys
            and seeds.
        max_relative_error: worst per-key error across keys and seeds.
        mean_space_bits: average store footprint across seeds.
    """

    family: str
    eps: float
    key_count: int
    mean_truth: float
    mean_relative_error: float
    max_relative_error: float
    mean_space_bits: float


def keyed_accuracy_sweep(
    families: Sequence[str],
    workload_factory: Callable[[int], "object"],
    eps_values: Sequence[float],
    seeds: Sequence[int],
    workload_seed: int = 12345,
    batch_size: Optional[int] = DEFAULT_SWEEP_BATCH,
    workload_scale: Optional[WorkloadScale] = None,
) -> List[KeyedSweepPoint]:
    """Sweep sketch-store families over a keyed workload.

    The keyed-workload mode of the sweep harness: every ``(family, eps,
    seed)`` trial builds a :class:`~repro.store.store.SketchStore`,
    drives the whole keyed workload through grouped vectorized sweeps
    (:func:`repro.analysis.runner.run_keyed_f0`), and the per-key errors
    aggregate into one point per (family, eps) cell.

    Args:
        families: store family names (struct-of-arrays families or any
            registry F0 estimator; for turnstile workloads, L0 registry
            names — the sweep drives
            :func:`repro.analysis.runner.run_keyed_l0` instead).
        workload_factory: callable building the keyed workload
            (:class:`repro.streams.generators.KeyedWorkload`) from a
            seed, or a workload-zoo class name; the same workload seed
            serves every family.
        eps_values: per-key accuracy targets to sweep.
        seeds: store seeds (one independent trial per seed).
        workload_seed: the workload seed.
        batch_size: grouped-sweep chunk length.
        workload_scale: size knobs for name-resolved zoo classes.
    """
    if not families or not eps_values or not seeds:
        raise ParameterError(
            "keyed_accuracy_sweep needs families, eps values, and seeds"
        )
    workload_factory = resolve_workload_factory(
        workload_factory, "keyed", workload_scale
    )
    workload = workload_factory(workload_seed)
    run_keyed = (
        run_keyed_l0 if getattr(workload, "deltas", None) is not None else run_keyed_f0
    )
    points: List[KeyedSweepPoint] = []
    for eps in eps_values:
        for family in families:
            mean_errors = []
            max_errors = []
            spaces = []
            key_count = 0
            mean_truth = 0.0
            for seed in seeds:
                result = run_keyed(
                    family, workload, eps, seed=seed, batch_size=batch_size
                )
                mean_errors.append(result.mean_relative_error)
                max_errors.append(result.max_relative_error)
                spaces.append(result.space_bits)
                key_count = result.key_count
                mean_truth = result.mean_truth
            points.append(
                KeyedSweepPoint(
                    family=family,
                    eps=eps,
                    key_count=key_count,
                    mean_truth=mean_truth,
                    mean_relative_error=sum(mean_errors) / len(mean_errors),
                    max_relative_error=max(max_errors),
                    mean_space_bits=sum(spaces) / len(spaces),
                )
            )
    return points


@dataclass
class WindowedSweepPoint:
    """Aggregated result of one (algorithm, window-width) cell.

    Attributes:
        algorithm: registry name of the F0 algorithm.
        window: window width in epochs.
        truth: the workload's exact distinct count over that window.
        summary: error statistics across seeds.
        within_band: fraction of trials inside ``(1 +/- eps)``.
    """

    algorithm: str
    window: int
    truth: int
    summary: ErrorSummary
    within_band: float


def windowed_accuracy_sweep(
    algorithms: Sequence[str],
    workload_factory: Callable[[int], "object"],
    window_widths: Sequence[int],
    eps: float,
    seeds: Sequence[int],
    workload_seed: int = 12345,
    batch_size: Optional[int] = DEFAULT_SWEEP_BATCH,
    workload_scale: Optional[WorkloadScale] = None,
) -> List[WindowedSweepPoint]:
    """Sweep windowed rollup accuracy over a timestamped workload.

    The sliding-window mode of the sweep harness: every (algorithm,
    seed) trial ingests the whole timestamped workload into one
    :class:`~repro.window.windowed.WindowedSketch` and then answers each
    requested window width by merge-rollup; errors are scored against
    the exact windowed ground truth
    (:meth:`~repro.streams.generators.WindowedWorkload
    .ground_truth_window`).  Because the rollup is exact for mergeable
    families, the per-window errors have the same distribution as
    whole-stream runs over just the window's updates — which is the
    point this sweep lets one verify empirically.

    Args:
        algorithms: mergeable F0 registry names (or, for turnstile
            workloads, mergeable L0 registry names).
        workload_factory: callable building the timestamped workload
            (:class:`repro.streams.generators.WindowedWorkload`) from a
            seed, or a workload-zoo class name; the same workload serves
            every algorithm.
        window_widths: window widths (in epochs) to score.
        eps: accuracy target used to size the sketches.
        seeds: estimator seeds (one independent trial per seed).
        workload_seed: the workload seed.
        batch_size: per-epoch ``update_batch`` chunk length.
        workload_scale: size knobs for name-resolved zoo classes.
    """
    from ..estimators.registry import make_f0_estimator, make_l0_estimator
    from ..window import WindowedSketch

    if not algorithms or not window_widths or not seeds:
        raise ParameterError(
            "windowed_accuracy_sweep needs algorithms, window widths, and seeds"
        )
    workload_factory = resolve_workload_factory(
        workload_factory, "windowed", workload_scale
    )
    workload = workload_factory(workload_seed)
    deltas = getattr(workload, "deltas", None)
    widths = sorted(set(int(width) for width in window_widths))
    if widths[0] < 1:
        raise ParameterError("window widths must be at least 1 epoch")
    retention = max(widths[-1], 1)
    truths = {width: workload.ground_truth_window(width) for width in widths}
    if deltas is None:
        make_template = lambda algorithm, seed: make_f0_estimator(
            algorithm, workload.universe_size, eps, seed
        )
    else:
        magnitude_bound = max(
            len(workload) * max((abs(int(delta)) for delta in deltas), default=1), 1
        )
        make_template = lambda algorithm, seed: make_l0_estimator(
            algorithm, workload.universe_size, eps, magnitude_bound, seed
        )
    estimates: Dict[Tuple[str, int], List[float]] = {
        (algorithm, width): [] for algorithm in algorithms for width in widths
    }
    for algorithm in algorithms:
        for seed in seeds:
            ring = WindowedSketch(
                make_template(algorithm, seed),
                retention=retention,
            )
            ring.ingest_timestamped(
                workload.epochs,
                workload.items,
                deltas,
                batch_size=batch_size,
            )
            for width in widths:
                estimates[(algorithm, width)].append(ring.estimate_window(width))
    points: List[WindowedSweepPoint] = []
    for algorithm in algorithms:
        for width in widths:
            cell = estimates[(algorithm, width)]
            points.append(
                WindowedSweepPoint(
                    algorithm=algorithm,
                    window=width,
                    truth=truths[width],
                    summary=summarize_errors(cell, truths[width]),
                    within_band=within_band_rate(cell, truths[width], eps),
                )
            )
    return points


def space_sweep(
    algorithms: Sequence[str],
    stream: MaterializedStream,
    eps_values: Sequence[float],
    seed: Optional[int] = 7,
) -> Dict[str, Dict[float, int]]:
    """Measure the sketch size of each algorithm at each eps after one run.

    Returns:
        ``{algorithm: {eps: bits}}``.
    """
    if not algorithms or not eps_values:
        raise ParameterError("space_sweep needs algorithms and eps values")
    results: Dict[str, Dict[float, int]] = {}
    for algorithm in algorithms:
        per_eps: Dict[float, int] = {}
        for eps in eps_values:
            run = run_f0_by_name(algorithm, stream, eps, seed=seed)
            per_eps[eps] = run.space_bits
        results[algorithm] = per_eps
    return results


def workload_class_grid(
    f0_algorithms: Sequence[str],
    l0_algorithms: Sequence[str],
    eps_values: Sequence[float],
    seeds: Sequence[int],
    classes: Optional[Sequence[str]] = None,
    stream_seed: int = 12345,
    batch_size: Optional[int] = DEFAULT_SWEEP_BATCH,
    workers: Optional[int] = None,
    workload_scale: Optional[WorkloadScale] = None,
) -> Dict[str, List[SweepPoint]]:
    """Run the per-workload-class accuracy grid.

    The workload-class axis of the sweep harness: every registered zoo
    class (or the subset in ``classes``) is swept over the same
    algorithm/eps/seed grid — insertion-only classes through
    :func:`accuracy_sweep` with ``f0_algorithms``, turnstile classes
    (churn) through :func:`l0_accuracy_sweep` with ``l0_algorithms`` —
    producing the error-vs-space curves per class that the README's
    accuracy grid and ``benchmarks/bench_workloads.py`` report.

    Args:
        f0_algorithms: registry F0 names for insertion-only classes.
        l0_algorithms: registry L0 names for turnstile classes.
        eps_values: accuracy targets to sweep.
        seeds: estimator seeds (one independent trial per seed).
        classes: zoo class names to include (default: all, zoo order).
        stream_seed: the workload seed shared by every class.
        batch_size: ``update_batch`` chunk length.
        workers: optional trial-level process parallelism.
        workload_scale: size knobs for the generated workloads.

    Returns:
        ``{class_name: [SweepPoint, ...]}`` in class order.
    """
    from ..streams.workloads import workload_class_names

    names = list(classes) if classes is not None else workload_class_names()
    grid: Dict[str, List[SweepPoint]] = {}
    for name in names:
        cls = workload_class(name)
        if cls.turnstile:
            grid[name] = l0_accuracy_sweep(
                l0_algorithms,
                name,
                eps_values,
                seeds,
                stream_seed=stream_seed,
                batch_size=batch_size,
                workers=workers,
                workload_scale=workload_scale,
            )
        else:
            grid[name] = accuracy_sweep(
                f0_algorithms,
                name,
                eps_values,
                seeds,
                stream_seed=stream_seed,
                batch_size=batch_size,
                workers=workers,
                workload_scale=workload_scale,
            )
    return grid


def format_workload_grid(
    grid: Dict[str, List[SweepPoint]],
    title: str = "Per-workload-class accuracy",
) -> str:
    """Render a :func:`workload_class_grid` result as a Markdown table.

    One row per (class, algorithm, eps) cell: the exact ground truth,
    the mean relative error across seeds, and the within-band rates the
    (eps, delta) guarantee promises.  This is the table the README's
    workload-zoo section embeds.
    """
    from .tables import Table

    table = Table(
        title,
        [
            "class",
            "model",
            "algorithm",
            "eps",
            "truth",
            "mean rel. err",
            "within eps",
            "within 2eps",
        ],
    )
    for name, points in grid.items():
        model = "L0" if workload_class(name).turnstile else "F0"
        for point in points:
            table.add_row(
                [
                    name,
                    model,
                    point.algorithm,
                    "%.2f" % point.eps,
                    point.truth,
                    "%.3f" % point.summary.mean,
                    "%d%%" % round(point.within_band * 100),
                    "%d%%" % round(point.within_2band * 100),
                ]
            )
    return table.render_markdown()
