"""Parameter sweeps: the workhorse behind the accuracy and space experiments.

A sweep runs a set of algorithms over a grid of ``(eps, workload, seed)``
configurations, aggregates the per-configuration relative errors, and
produces the rows the benchmark tables print.  It is deliberately plain
(nested loops, explicit dataclasses) so a reader can audit exactly what was
measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..exceptions import ParameterError
from ..streams.model import MaterializedStream
from .metrics import ErrorSummary, summarize_errors, within_band_rate
from .runner import run_f0_by_name, run_l0_by_name

__all__ = [
    "DEFAULT_SWEEP_BATCH",
    "SweepPoint",
    "accuracy_sweep",
    "l0_accuracy_sweep",
    "space_sweep",
]

#: Chunk length used when sweeps drive sketches through ``update_batch``.
DEFAULT_SWEEP_BATCH = 4096

StreamFactory = Callable[[int], MaterializedStream]


@dataclass
class SweepPoint:
    """Aggregated result of one (algorithm, eps) cell of a sweep.

    Attributes:
        algorithm: registry name of the algorithm.
        eps: the accuracy target used to size the sketch.
        truth: the workload's exact F0/L0.
        summary: error statistics across seeds.
        within_band: fraction of trials inside ``(1 +/- eps)``.
        within_2band: fraction of trials inside ``(1 +/- 2 eps)``.
        mean_space_bits: average sketch size across seeds.
    """

    algorithm: str
    eps: float
    truth: int
    summary: ErrorSummary
    within_band: float
    within_2band: float
    mean_space_bits: float


def _aggregate(
    algorithm: str,
    eps: float,
    truth: int,
    estimates: Sequence[float],
    spaces: Sequence[int],
) -> SweepPoint:
    return SweepPoint(
        algorithm=algorithm,
        eps=eps,
        truth=truth,
        summary=summarize_errors(estimates, truth),
        within_band=within_band_rate(estimates, truth, eps),
        within_2band=within_band_rate(estimates, truth, 2 * eps),
        mean_space_bits=sum(spaces) / len(spaces),
    )


def accuracy_sweep(
    algorithms: Sequence[str],
    stream_factory: StreamFactory,
    eps_values: Sequence[float],
    seeds: Sequence[int],
    stream_seed: int = 12345,
    batch_size: Optional[int] = DEFAULT_SWEEP_BATCH,
) -> List[SweepPoint]:
    """Run an F0 accuracy sweep.

    Args:
        algorithms: registry names to evaluate.
        stream_factory: callable building the workload from a seed (the same
            workload seed is used for every algorithm so they see identical
            streams).
        eps_values: accuracy targets to sweep.
        seeds: estimator seeds (one independent trial per seed).
        stream_seed: the workload seed.
        batch_size: chunk length for batched sketch driving (sweeps replay
            the same stream many times, so the vectorized ``update_batch``
            path is the default; pass ``None`` to force the scalar loop).
            Results are identical by the batch-API contract, up to the
            one documented deviation: the KNW Figure 3 FAIL test runs at
            chunk granularity (see
            :meth:`repro.core.knw.KNWFigure3Sketch.update_batch`).

    Returns:
        One :class:`SweepPoint` per (algorithm, eps) pair.
    """
    if not algorithms or not eps_values or not seeds:
        raise ParameterError("accuracy_sweep needs algorithms, eps values, and seeds")
    stream = stream_factory(stream_seed)
    truth = stream.ground_truth()
    points: List[SweepPoint] = []
    for eps in eps_values:
        for algorithm in algorithms:
            estimates: List[float] = []
            spaces: List[int] = []
            for seed in seeds:
                result = run_f0_by_name(
                    algorithm, stream, eps, seed=seed, batch_size=batch_size
                )
                estimates.append(result.estimate)
                spaces.append(result.space_bits)
            points.append(_aggregate(algorithm, eps, truth, estimates, spaces))
    return points


def l0_accuracy_sweep(
    algorithms: Sequence[str],
    stream_factory: StreamFactory,
    eps_values: Sequence[float],
    seeds: Sequence[int],
    stream_seed: int = 12345,
) -> List[SweepPoint]:
    """Run an L0 accuracy sweep (same contract as :func:`accuracy_sweep`)."""
    if not algorithms or not eps_values or not seeds:
        raise ParameterError("l0_accuracy_sweep needs algorithms, eps values, and seeds")
    stream = stream_factory(stream_seed)
    truth = stream.ground_truth()
    points: List[SweepPoint] = []
    for eps in eps_values:
        for algorithm in algorithms:
            estimates: List[float] = []
            spaces: List[int] = []
            for seed in seeds:
                result = run_l0_by_name(algorithm, stream, eps, seed=seed)
                estimates.append(result.estimate)
                spaces.append(result.space_bits)
            points.append(_aggregate(algorithm, eps, truth, estimates, spaces))
    return points


def space_sweep(
    algorithms: Sequence[str],
    stream: MaterializedStream,
    eps_values: Sequence[float],
    seed: Optional[int] = 7,
) -> Dict[str, Dict[float, int]]:
    """Measure the sketch size of each algorithm at each eps after one run.

    Returns:
        ``{algorithm: {eps: bits}}``.
    """
    if not algorithms or not eps_values:
        raise ParameterError("space_sweep needs algorithms and eps values")
    results: Dict[str, Dict[float, int]] = {}
    for algorithm in algorithms:
        per_eps: Dict[float, int] = {}
        for eps in eps_values:
            run = run_f0_by_name(algorithm, stream, eps, seed=seed)
            per_eps[eps] = run.space_bits
        results[algorithm] = per_eps
    return results
