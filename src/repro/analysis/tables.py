"""Tabular report formatting for the Figure-1-style comparisons.

The benchmarks print their results in the same shape as the paper's
Figure 1 (one row per algorithm, columns for space, time, and notes) plus
accuracy columns the paper states in prose.  Output is plain-text aligned
columns (readable in a terminal and in the saved ``bench_output.txt``) with
an optional Markdown rendering for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Sequence

from ..exceptions import ParameterError

__all__ = ["Table", "format_bits"]


def format_bits(bits: int) -> str:
    """Render a bit count in a compact human-readable form."""
    if bits < 0:
        raise ParameterError("bit counts cannot be negative")
    if bits < 1 << 13:
        return "%d b" % bits
    if bits < 1 << 23:
        return "%.1f Kib" % (bits / 1024.0)
    return "%.2f Mib" % (bits / (1024.0 * 1024.0))


class Table:
    """A small fixed-column table builder.

    Attributes:
        title: table caption.
        headers: column headers.
    """

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        if not headers:
            raise ParameterError("a table needs at least one column")
        self.title = title
        self.headers = list(headers)
        self._rows: List[List[str]] = []

    def add_row(self, cells: Sequence[object]) -> None:
        """Append a row (cells are stringified; count must match headers)."""
        if len(cells) != len(self.headers):
            raise ParameterError(
                "expected %d cells, got %d" % (len(self.headers), len(cells))
            )
        self._rows.append([str(cell) for cell in cells])

    @property
    def rows(self) -> List[List[str]]:
        """The rows added so far (stringified)."""
        return [list(row) for row in self._rows]

    def _widths(self) -> List[int]:
        widths = [len(header) for header in self.headers]
        for row in self._rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        return widths

    def render_text(self) -> str:
        """Return the table as aligned plain text."""
        widths = self._widths()
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(
            header.ljust(widths[index]) for index, header in enumerate(self.headers)
        )
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for row in self._rows:
            lines.append(
                "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
            )
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Return the table as GitHub-flavoured Markdown."""
        lines = ["### %s" % self.title, ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join(["---"] * len(self.headers)) + "|")
        for row in self._rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render_text()
