"""repro: a reproduction of Kane--Nelson--Woodruff, "An Optimal Algorithm
for the Distinct Elements Problem" (PODS 2010).

The package implements the paper's optimal F0 (distinct elements) streaming
estimator, its L0 (Hamming norm) estimator for turnstile streams, every
substrate they rely on (hash families, bit-level data structures, the
balls-and-bins analysis quantities), the prior algorithms the paper's
Figure 1 compares against, and an experiment harness that regenerates the
paper's comparisons.

Quickstart (scalar streaming — the paper's one-item-per-update model)::

    from repro import KNWDistinctCounter

    counter = KNWDistinctCounter(universe_size=1 << 32, eps=0.05, seed=7)
    for packet in packets:
        counter.update(packet.flow_id)
    print(counter.estimate())

Quickstart (batch ingestion — the high-throughput pipeline).  Every
estimator also exposes ``update_batch(items)``, taking any integer
sequence (fastest with a NumPy integer array) and guaranteed to leave the
sketch in a state bit-identical to the scalar loop's, for any partition of
the stream into batches::

    import numpy as np
    from repro import KNWDistinctCounter

    counter = KNWDistinctCounter(universe_size=1 << 32, eps=0.05, seed=7)
    for chunk in np.array_split(identifiers, 64):
        counter.update_batch(chunk)
    print(counter.estimate())

The main entry points are:

* :class:`repro.core.knw.KNWDistinctCounter` — the paper's F0 estimator.
* :class:`repro.core.fast_knw.FastKNWDistinctCounter` — the O(1)-time variant.
* :class:`repro.l0.knw_l0.KNWHammingNormEstimator` — the L0 estimator.
* :func:`repro.estimators.registry.make_f0_estimator` — any Figure-1 algorithm by name.
* :class:`repro.estimators.base.CardinalityEstimator` — the estimator
  interface, including the ``update_batch`` equivalence contract.
* :mod:`repro.vectorize` — the NumPy substrate behind batch ingestion.
* :mod:`repro.serialize` — ``state_dict``/``to_bytes`` sketch transport
  (every estimator round-trips bit-identically).
* :mod:`repro.parallel` — sharded multi-process ingestion with
  merge-reduce (``parallel_ingest_f0(..., workers=8)``; the linear L0
  sketches shard too via ``parallel_ingest_l0``; keyed sketch stores
  shard by key range via ``parallel_ingest_keyed``).
* :mod:`repro.store` — the keyed sketch store: the state of N
  per-entity sketches as struct-of-arrays NumPy matrices, with
  ``update_grouped(keys, items)`` ingesting a whole keyed batch in one
  hash pass plus a sort/group scatter (``SketchStore.for_family(
  "hyperloglog", n, seed=7)``).
* :mod:`repro.window` — sliding-window distinct counting: a bounded
  ring of per-epoch sketches answering "distinct over the last ``k``
  epochs" by memoized merge-rollup (``WindowedSketch(sketch,
  retention=64)``; keyed variant ``WindowedSketchStore``; epoch-range
  sharding via ``parallel_ingest_windowed``).
* :mod:`repro.analysis.runner` — run any estimator over any stream, with
  optional ``batch_size`` for batched driving and ``workers`` for
  sharded multi-process ingestion.
* :mod:`repro.durability` — crash-safe persistence: a checksummed
  write-ahead log plus snapshot checkpointing for any sketch, store, or
  windowed ring (``Checkpointer``), with bit-identical ``recover()``
  verified by SIGKILL crash injection.
* :mod:`repro.apps` — query-optimiser, network-monitoring, and data-cleaning applications.

See ``README.md`` for the module-to-theorem map and ``docs/architecture.md``
for the class hierarchy and the batch-ingestion data flow.
"""

from ._version import __version__
from .core.fast_knw import FastKNWDistinctCounter
from .durability import Checkpointer, DurableLog, RecoveryReport, recover
from .core.knw import KNWDistinctCounter
from .core.rough_estimator import RoughEstimator
from .estimators.base import CardinalityEstimator, TurnstileEstimator
from .estimators.exact import ExactDistinctCounter, ExactHammingNorm
from .estimators.median import MedianEstimator, MedianTurnstileEstimator
from .estimators.registry import (
    f0_algorithm_names,
    l0_algorithm_names,
    make_f0_estimator,
    make_l0_estimator,
)
from .exceptions import (
    MergeError,
    ParameterError,
    PersistenceError,
    ReproError,
    SerializationError,
    SketchFailure,
    StreamFormatError,
    UpdateError,
)
from .l0.knw_l0 import KNWHammingNormEstimator
from .l0.rough_l0 import RoughL0Estimator
from .parallel import (
    mergeable_f0_names,
    mergeable_l0_names,
    parallel_ingest_f0,
    parallel_ingest_into,
    parallel_ingest_keyed,
    parallel_ingest_l0,
    parallel_ingest_updates_into,
    parallel_ingest_windowed,
    parallel_ingest_windowed_keyed,
)
from .store import SketchArray, SketchStore, make_sketch_array, sketch_array_family_names
from .window import WindowedSketch, WindowedSketchStore

__all__ = [
    "__version__",
    "FastKNWDistinctCounter",
    "KNWDistinctCounter",
    "RoughEstimator",
    "CardinalityEstimator",
    "TurnstileEstimator",
    "ExactDistinctCounter",
    "ExactHammingNorm",
    "MedianEstimator",
    "MedianTurnstileEstimator",
    "f0_algorithm_names",
    "l0_algorithm_names",
    "make_f0_estimator",
    "make_l0_estimator",
    "Checkpointer",
    "DurableLog",
    "RecoveryReport",
    "recover",
    "MergeError",
    "ParameterError",
    "PersistenceError",
    "ReproError",
    "SerializationError",
    "SketchFailure",
    "StreamFormatError",
    "UpdateError",
    "KNWHammingNormEstimator",
    "RoughL0Estimator",
    "mergeable_f0_names",
    "mergeable_l0_names",
    "parallel_ingest_f0",
    "parallel_ingest_into",
    "parallel_ingest_keyed",
    "parallel_ingest_l0",
    "parallel_ingest_updates_into",
    "parallel_ingest_windowed",
    "parallel_ingest_windowed_keyed",
    "SketchArray",
    "SketchStore",
    "make_sketch_array",
    "sketch_array_family_names",
    "WindowedSketch",
    "WindowedSketchStore",
]
