"""repro: a reproduction of Kane--Nelson--Woodruff, "An Optimal Algorithm
for the Distinct Elements Problem" (PODS 2010).

The package implements the paper's optimal F0 (distinct elements) streaming
estimator, its L0 (Hamming norm) estimator for turnstile streams, every
substrate they rely on (hash families, bit-level data structures, the
balls-and-bins analysis quantities), the prior algorithms the paper's
Figure 1 compares against, and an experiment harness that regenerates the
paper's comparisons.

Quickstart::

    from repro import KNWDistinctCounter

    counter = KNWDistinctCounter(universe_size=1 << 32, eps=0.05, seed=7)
    for packet in packets:
        counter.update(packet.flow_id)
    print(counter.estimate())

The main entry points are:

* :class:`repro.core.knw.KNWDistinctCounter` — the paper's F0 estimator.
* :class:`repro.core.fast_knw.FastKNWDistinctCounter` — the O(1)-time variant.
* :class:`repro.l0.knw_l0.KNWHammingNormEstimator` — the L0 estimator.
* :func:`repro.estimators.registry.make_f0_estimator` — any Figure-1 algorithm by name.
* :mod:`repro.apps` — query-optimiser, network-monitoring, and data-cleaning applications.
"""

from ._version import __version__
from .core.fast_knw import FastKNWDistinctCounter
from .core.knw import KNWDistinctCounter
from .core.rough_estimator import RoughEstimator
from .estimators.base import CardinalityEstimator, TurnstileEstimator
from .estimators.exact import ExactDistinctCounter, ExactHammingNorm
from .estimators.median import MedianEstimator, MedianTurnstileEstimator
from .estimators.registry import (
    f0_algorithm_names,
    l0_algorithm_names,
    make_f0_estimator,
    make_l0_estimator,
)
from .exceptions import (
    MergeError,
    ParameterError,
    ReproError,
    SketchFailure,
    StreamFormatError,
    UpdateError,
)
from .l0.knw_l0 import KNWHammingNormEstimator
from .l0.rough_l0 import RoughL0Estimator

__all__ = [
    "__version__",
    "FastKNWDistinctCounter",
    "KNWDistinctCounter",
    "RoughEstimator",
    "CardinalityEstimator",
    "TurnstileEstimator",
    "ExactDistinctCounter",
    "ExactHammingNorm",
    "MedianEstimator",
    "MedianTurnstileEstimator",
    "f0_algorithm_names",
    "l0_algorithm_names",
    "make_f0_estimator",
    "make_l0_estimator",
    "MergeError",
    "ParameterError",
    "ReproError",
    "SketchFailure",
    "StreamFormatError",
    "UpdateError",
    "KNWHammingNormEstimator",
    "RoughL0Estimator",
]
