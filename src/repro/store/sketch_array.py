"""Struct-of-arrays state for N homologous sketches: :class:`SketchArray`.

The paper's motivating applications key *many* sketches by entity —
per-column NDV statistics, per-source fan-out counters — and a dict of
sketch objects updates them one Python call at a time.  A
:class:`SketchArray` stores the state of ``rows`` sketches of one family
(same parameters, same seed-derived hash functions) as contiguous NumPy
arrays instead: registers become an ``(N, m)`` matrix, bitmaps become
``(N, bytes)`` bit-planes, and :meth:`update_grouped` ingests a whole
keyed batch with **one** shared hash pass plus a sort/group scatter
(:func:`repro.vectorize.grouped_max_scatter`), so every touched sketch
updates inside the same vectorized sweep.

The binding contract, mirroring the ``update_batch`` equivalence
contract of :class:`repro.estimators.base.CardinalityEstimator`:

* **Row equivalence** — after any interleaving of :meth:`update` and
  :meth:`update_grouped` calls, every row is *bit-identical* (every
  state word) to an independent sketch of the family constructed with
  the array's seed and fed that row's updates in order.
  :meth:`export_row` materialises that independent sketch on demand and
  ``tests/test_sketch_store.py`` enforces the equivalence.
* **Validation** — a grouped batch is validated before any state is
  mutated (row range, item universe, aligned lengths), so a rejected
  batch leaves the array untouched.
* **Homology** — all rows share one seed-derived hash bundle.  This is
  what the consuming applications already did (every column sketch of a
  :class:`~repro.apps.query_optimizer.ColumnStatisticsCollector` shares
  a seed so columns stay mergeable), and it is what makes one hash pass
  per batch possible.

Concrete families live in :mod:`repro.store.families`; the key-addressed
wrapper is :class:`repro.store.store.SketchStore`.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

from ..estimators.base import SerializableState
from ..exceptions import MergeError, ParameterError, UpdateError
from ..vectorize import (
    HAS_NUMPY,
    as_delta_array,
    as_key_array,
    np,
    require_numpy,
)

__all__ = ["SketchArray"]


class SketchArray(SerializableState, abc.ABC):
    """State of ``rows`` homologous sketches laid out struct-of-arrays.

    Attributes:
        family: registry name of the sketch family.
        universe_size: the shared identifier universe ``n``.
        seed: the shared seed every row's hash functions derive from.
    """

    #: Registry name, overridden by subclasses.
    family: str = "sketch-array"

    #: Whether rows are turnstile (L0) sketches taking signed deltas.
    turnstile: bool = False

    def __init__(self, universe_size: int, rows: int, seed: Optional[int]) -> None:
        """Initialise the shared fields (subclasses allocate the state).

        Args:
            universe_size: the identifier universe (at least 2).
            rows: initial number of sketches; must be non-negative.
            seed: the shared seed.  Required: homologous rows exist to be
                compared, merged, and sharded, all of which need
                seed-determined hash functions.
        """
        if universe_size < 2:
            raise ParameterError("universe_size must be at least 2")
        if rows < 0:
            raise ParameterError("rows must be non-negative")
        if seed is None:
            raise ParameterError(
                "%s requires an explicit seed: every row shares the "
                "seed-derived hash functions" % type(self).__name__
            )
        self.universe_size = universe_size
        self.seed = seed
        self._rows = rows

    # -- geometry -------------------------------------------------------------------

    @property
    def rows(self) -> int:
        """The number of sketches currently stored."""
        return self._rows

    def __len__(self) -> int:
        return self._rows

    def grow(self, count: int) -> int:
        """Append ``count`` fresh (empty) rows; return the first new row index.

        Growth is amortised: the backing arrays over-allocate
        geometrically, so discovering keys one batch at a time stays
        linear overall.
        """
        if count < 0:
            raise ParameterError("cannot grow by a negative row count")
        first = self._rows
        if count:
            self._reserve(self._rows + count)
            self._rows += count
        return first

    @abc.abstractmethod
    def _reserve(self, rows: int) -> None:
        """Ensure the backing storage can hold ``rows`` rows."""

    # -- ingestion ------------------------------------------------------------------

    def update(self, row: int, item: int, delta: Optional[int] = None) -> None:
        """Apply one update to one row, exactly like the row's own sketch.

        Args:
            row: the target sketch's row index.
            item: identifier in ``[0, universe_size)``.
            delta: signed frequency delta; required for turnstile
                families, forbidden otherwise.
        """
        self._check_row(row)
        if self.turnstile:
            if delta is None:
                raise UpdateError(
                    "%s rows are turnstile sketches; pass a delta" % self.family
                )
            self._update_scalar(row, item, int(delta))
        else:
            if delta is not None:
                raise UpdateError(
                    "%s rows are insertion-only sketches; deltas are not "
                    "accepted" % self.family
                )
            self._update_scalar(row, item, None)

    def validate_batch(self, items, deltas=None):
        """Validate a batch without touching any state.

        The all-or-nothing half of the grouped contract, callable on its
        own so the key-addressed store can validate *before* registering
        a batch's new keys: item dtypes and universe range
        (:func:`repro.vectorize.as_key_array`), delta dtypes and
        alignment for turnstile families, delta absence for
        insertion-only families.

        Returns:
            ``(items, deltas)`` as validated arrays (``deltas`` stays
            ``None`` for insertion-only families).
        """
        require_numpy("SketchArray batches")
        keys = as_key_array(items, self.universe_size)
        if self.turnstile:
            if deltas is None:
                raise UpdateError(
                    "%s rows are turnstile sketches; pass deltas" % self.family
                )
            deltas = as_delta_array(deltas, expected_length=len(keys))
        elif deltas is not None:
            raise UpdateError(
                "%s rows are insertion-only sketches; deltas are not "
                "accepted" % self.family
            )
        return keys, deltas

    def update_grouped(self, rows, items, deltas=None) -> None:
        """Apply a keyed batch: item ``items[i]`` goes to row ``rows[i]``.

        One shared hash pass over the whole batch plus a sort/group
        scatter updates every touched row inside the same vectorized
        sweep — bit-identical to looping :meth:`update` over the pairs
        in order.  The whole batch is validated before any state is
        mutated; an empty batch is a no-op.

        Args:
            rows: integer sequence/ndarray of row indices, one per item.
            items: identifier sequence/ndarray (values in
                ``[0, universe_size)``).
            deltas: signed deltas, required for turnstile families and
                forbidden otherwise.
        """
        keys, deltas = self.validate_batch(items, deltas)
        rows = self._as_row_array(rows, len(keys))
        self.ingest_validated(rows, keys, deltas)

    def ingest_validated(self, rows, keys, deltas) -> None:
        """Grouped ingest for arrays :meth:`validate_batch` already vetted.

        The key-addressed store's entry point: it validates the batch
        once up front (before registering new keys), maps keys to rows —
        which are then in range by construction — and hands the arrays
        straight to the family sweep, so the benchmarked hot path pays a
        single validation pass.
        """
        if len(keys) == 0:
            return
        self._update_grouped(rows, keys, deltas)

    def update_row_batch(self, row: int, items, deltas=None) -> None:
        """Bulk-ingest one row: ``update_batch`` semantics for a single sketch."""
        self._check_row(row)
        keys, deltas = self.validate_batch(items, deltas)
        if keys.size == 0:
            return
        rows = np.full(len(keys), row, dtype=np.int64)
        self._update_grouped(rows, keys, deltas)

    @abc.abstractmethod
    def _update_scalar(self, row: int, item: int, delta: Optional[int]) -> None:
        """Family scalar update for a validated row."""

    @abc.abstractmethod
    def _update_grouped(self, rows, keys, deltas) -> None:
        """Family grouped update for validated row/key arrays."""

    # -- reporting ------------------------------------------------------------------

    @abc.abstractmethod
    def estimate_all(self) -> List[float]:
        """Return every row's current estimate, in row order, in one sweep."""

    def estimate_row(self, row: int) -> float:
        """Return one row's estimate (same value its exported sketch reports)."""
        self._check_row(row)
        return self._estimate_row(row)

    @abc.abstractmethod
    def _estimate_row(self, row: int) -> float:
        """Family estimate for a validated row."""

    # -- row materialisation --------------------------------------------------------

    @abc.abstractmethod
    def export_row(self, row: int):
        """Materialise row ``row`` as an independent sketch of the family.

        The result is bit-identical — equal ``state_dict()`` — to a
        sketch constructed with the array's parameters and seed and fed
        the row's updates directly.  For the struct-of-arrays families
        this builds a fresh object (mutating it does not touch the
        array); the object-backed fallback returns the live row sketch.
        """

    @abc.abstractmethod
    def import_row(self, row: int, sketch) -> None:
        """Replace row ``row``'s state with ``sketch``'s state.

        The inverse of :meth:`export_row`: ``sketch`` must be a
        same-parameter, same-seed sketch of the family (e.g. an exported
        row that was driven further through the sharded ingestion
        engine).
        """

    @abc.abstractmethod
    def make_sketch(self):
        """Return a fresh empty sketch of the family (the row template)."""

    # -- merging --------------------------------------------------------------------

    def merge_rows(self, other: "SketchArray", my_rows, other_rows) -> None:
        """Merge ``other``'s rows into this array's rows, pairwise.

        ``other`` must be a compatible array (same family, parameters,
        and seed); row ``other_rows[i]`` merges into ``my_rows[i]``
        exactly as the corresponding independent sketches would merge.
        Freshly grown (empty) rows merge as adoption — max/OR unions and
        additive turnstile merges both treat the zero state as identity.
        """
        self._check_merge_compatible(other)
        my_rows = self._as_row_array(my_rows, None)
        other_rows = other._as_row_array(other_rows, None)
        if len(my_rows) != len(other_rows):
            raise MergeError("merge_rows needs aligned row index arrays")
        if len(my_rows) == 0:
            return
        self._merge_rows(other, my_rows, other_rows)

    @abc.abstractmethod
    def _merge_rows(self, other: "SketchArray", my_rows, other_rows) -> None:
        """Family merge for validated, aligned row arrays."""

    def _check_merge_compatible(self, other: "SketchArray") -> None:
        if type(other) is not type(self):
            raise MergeError(
                "cannot merge %s with %s"
                % (type(self).__name__, type(other).__name__)
            )
        if (
            other.universe_size != self.universe_size
            or other.seed != self.seed
            or not self._same_parameters(other)
        ):
            raise MergeError(
                "%s arrays must share parameters and seed to merge" % self.family
            )

    @abc.abstractmethod
    def _same_parameters(self, other: "SketchArray") -> bool:
        """Whether ``other`` (same class) was built with equal parameters."""

    @abc.abstractmethod
    def spawn_empty(self) -> "SketchArray":
        """Return a fresh zero-row array with identical parameters and seed.

        The template the sharded keyed-ingestion engine ships to worker
        processes (:func:`repro.parallel.parallel_ingest_keyed`).
        """

    # -- space ----------------------------------------------------------------------

    @abc.abstractmethod
    def space_bits(self) -> int:
        """Return the total state footprint in bits (all rows, shared hashes once)."""

    # -- helpers --------------------------------------------------------------------

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self._rows:
            raise ParameterError("row %d outside [0, %d)" % (row, self._rows))

    def _as_row_array(self, rows, expected_length: Optional[int]):
        """Validate a row-index batch: integer dtype, in range, aligned."""
        if not HAS_NUMPY:  # pragma: no cover - numpy is a declared dependency
            require_numpy("SketchArray row batches")
        if isinstance(rows, np.ndarray) and rows.dtype == np.int64:
            values = rows
        else:
            values = np.asarray(rows)
            if values.size and values.dtype.kind not in ("i", "u"):
                raise ParameterError("row indices must be integers")
            values = values.astype(np.int64, copy=False).reshape(-1)
        if expected_length is not None and len(values) != expected_length:
            raise UpdateError("update_grouped needs one row index per item")
        if values.size:
            low = int(values.min())
            high = int(values.max())
            if low < 0 or high >= self._rows:
                bad = low if low < 0 else high
                raise ParameterError(
                    "row %d outside [0, %d)" % (bad, self._rows)
                )
        return values

    @staticmethod
    def _capacity_for(rows: int) -> int:
        """Backing capacity for ``rows`` rows: the next power of two, >= 16.

        Geometric over-allocation keeps repeated single-key growth linear
        overall.  The capacity is a *deterministic function of the row
        count* rather than of the growth history, so two stores holding
        the same keys serialize byte-identically no matter how their
        batches were sliced (family constructors and :meth:`_grow_matrix`
        both use this rule).
        """
        if rows == 0:
            return 0
        return max(16, 1 << max(rows - 1, 1).bit_length())

    def _grow_matrix(self, matrix, rows: int):
        """Return ``matrix`` re-allocated to at least ``rows`` leading entries.

        Existing rows are preserved; new rows are zero.
        """
        capacity = matrix.shape[0]
        if rows <= capacity:
            return matrix
        grown = np.zeros(
            (self._capacity_for(rows),) + matrix.shape[1:], dtype=matrix.dtype
        )
        grown[:capacity] = matrix
        return grown

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return "%s(family=%r, rows=%d, universe_size=%d)" % (
            type(self).__name__,
            self.family,
            self._rows,
            self.universe_size,
        )


def as_sequence(values) -> Sequence:
    """Return ``values`` as a sequence (materialising iterators once)."""
    if isinstance(values, (list, tuple)):
        return values
    if HAS_NUMPY and isinstance(values, np.ndarray):
        return values
    return list(values)
