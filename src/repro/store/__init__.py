"""Keyed sketch-store subsystem: many homologous sketches, one sweep.

The paper's motivating applications key sketches by entity (per-column
NDV statistics, per-source fan-out); this package stores N such sketches
as struct-of-arrays NumPy state and ingests whole keyed batches through
one shared hash pass plus a sort/group scatter:

* :class:`~repro.store.sketch_array.SketchArray` — the row-addressed
  struct-of-arrays state, bit-identical per row to independent sketches.
* :mod:`repro.store.families` — HyperLogLog / LogLog register matrices,
  linear-counting bit-planes, the KNW rough-estimator counter tensor,
  and the object-backed fallback covering every registry estimator.
* :class:`~repro.store.store.SketchStore` — the growable key-to-row
  mapping with bulk reporting (``estimate_all``), key-wise merging
  (``merge_from``), and ``state_dict``/``to_bytes`` transport.

Sharding by key lives in :func:`repro.parallel.parallel_ingest_keyed`.
"""

from .families import (
    HyperLogLogSketchArray,
    LinearCountingSketchArray,
    LogLogSketchArray,
    ObjectSketchArray,
    RoughSketchArray,
    make_sketch_array,
    sketch_array_family_names,
)
from .sketch_array import SketchArray
from .store import SketchStore

__all__ = [
    "SketchArray",
    "SketchStore",
    "HyperLogLogSketchArray",
    "LogLogSketchArray",
    "LinearCountingSketchArray",
    "RoughSketchArray",
    "ObjectSketchArray",
    "make_sketch_array",
    "sketch_array_family_names",
]
