"""Concrete :class:`~repro.store.sketch_array.SketchArray` families.

Four families store their rows as true struct-of-arrays NumPy state and
ingest keyed batches in one shared hash pass plus a grouped scatter:

* :class:`HyperLogLogSketchArray` / :class:`LogLogSketchArray` — the
  register sketches: an ``(N, m)`` register matrix, one splitmix64 pass
  and one de Bruijn ``rho`` extraction per batch, grouped per-register
  maxima (:func:`repro.vectorize.grouped_max_scatter`).
* :class:`LinearCountingSketchArray` — Estan-style bitmaps as ``(N,
  ceil(b/8))`` bit-planes, grouped OR scatter into the byte planes.
* :class:`RoughSketchArray` — the KNW Figure 2 rough estimator
  (:class:`repro.core.rough_estimator.RoughEstimator`, polynomial
  ``h3``): an ``(N, 3, K_RE)`` counter tensor, three Carter--Wegman
  passes per batch, grouped per-counter maxima, and a fully vectorized
  ``T_r``-threshold report (the ``t``-th largest counter per copy).

Every family is **bit-identical per row** to independent sketches of the
underlying class sharing the array's seed: :meth:`export_row` builds
that independent sketch (equal ``state_dict()``), which the test suite
verifies after arbitrary interleavings of scalar and grouped updates.

:class:`ObjectSketchArray` is the generic fallback: it keeps one sketch
object per row (cloned from a serialized template, so all rows share the
seed-derived hash functions) and implements grouped ingestion as one
sort plus one vectorized ``update_batch`` per *touched row* — no
per-item Python work, and any registry estimator (including the full KNW
F0/L0 sketches and turnstile families) gains keyed batching through it.
"""

from __future__ import annotations

import math
from typing import List, Optional

from .. import serialize
from ..baselines.hyperloglog import HyperLogLogCounter, _alpha
from ..baselines.linear_counting import LinearCounter
from ..baselines.loglog import LogLogCounter
from ..bitstructs.bitvector import BitVector
from ..bitstructs.packed import PackedCounterArray
from ..core.rough_estimator import RoughEstimator
from ..estimators.base import TurnstileEstimator
from ..exceptions import ParameterError
from ..hashing.bitops import lsb, lsb_batch, rho_batch
from ..vectorize import (
    group_slices,
    grouped_max_scatter,
    grouped_or_scatter,
    np,
)
from .sketch_array import SketchArray

__all__ = [
    "HyperLogLogSketchArray",
    "LogLogSketchArray",
    "LinearCountingSketchArray",
    "RoughSketchArray",
    "ObjectSketchArray",
    "make_sketch_array",
    "sketch_array_family_names",
]


def _counter_dtype(peak: int):
    """Smallest unsigned dtype holding values up to ``peak``."""
    if peak <= 0xFF:
        return np.uint8
    if peak <= 0xFFFF:
        return np.uint16
    return np.uint32


_POPCOUNT_TABLE = None


def _popcount_table():
    """Per-byte popcount lookup (built once per process)."""
    global _POPCOUNT_TABLE
    if _POPCOUNT_TABLE is None:
        _POPCOUNT_TABLE = np.array(
            [bin(value).count("1") for value in range(256)], dtype=np.uint8
        )
    return _POPCOUNT_TABLE


class _RegisterSketchArray(SketchArray):
    """Shared struct-of-arrays core of the LogLog-style register sketches.

    Rows are ``m``-register sketches whose per-register reduction is a
    maximum of ``rho`` values; the state is one ``(N, m)`` matrix and a
    grouped batch reduces with one :func:`grouped_max_scatter` over the
    flattened ``row * m + register`` index.
    """

    def __init__(
        self,
        universe_size: int,
        rows: int = 0,
        eps: float = 0.05,
        registers: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        """Create the array.

        Args:
            universe_size: the shared universe ``n``.
            rows: initial sketch count.
            eps: target standard error (sets the register count).
            registers: explicit register count (power of two).
            seed: the shared seed (required; all rows derive their hash
                function from it).
        """
        super().__init__(universe_size, rows, seed)
        self.eps = eps
        self._template = self._make_template(
            universe_size, eps, registers, seed
        )
        self.registers = self._template.registers
        self._register_bits = self._template._register_bits
        self._value_bits = self._template._value_bits
        self._width = self._template._registers.width
        self._value_cap = (1 << self._width) - 1
        self._state = np.zeros(
            (self._capacity_for(rows), self.registers),
            dtype=_counter_dtype(self._value_cap),
        )

    def _make_template(self, universe_size, eps, registers, seed):
        raise NotImplementedError

    # -- geometry --------------------------------------------------------------------

    def _reserve(self, rows: int) -> None:
        self._state = self._grow_matrix(self._state, rows)

    # -- ingestion -------------------------------------------------------------------

    def _update_scalar(self, row: int, item: int, delta: Optional[int]) -> None:
        value = self._template._oracle(item)
        register = value & (self.registers - 1)
        remainder = value >> self._register_bits
        rho = min(
            lsb(remainder, zero_value=self._value_bits - 1) + 1, self._value_cap
        )
        if rho > int(self._state[row, register]):
            self._state[row, register] = rho

    def _update_grouped(self, rows, keys, deltas) -> None:
        values = self._template._oracle.hash_batch_validated(keys)
        registers = (values & np.uint64(self.registers - 1)).astype(np.int64)
        remainders = values >> np.uint64(self._register_bits)
        rho = rho_batch(remainders, zero_value=self._value_bits - 1)
        rho = np.minimum(rho, np.int64(self._value_cap))
        flat = rows * np.int64(self.registers) + registers
        target = self._state[: self._rows].reshape(-1)
        grouped_max_scatter(target, flat, rho)

    # -- row materialisation ---------------------------------------------------------

    def make_sketch(self):
        return serialize.loads(serialize.dumps(self._template))

    def export_row(self, row: int):
        self._check_row(row)
        sketch = self.make_sketch()
        sketch._registers = PackedCounterArray.from_numpy(
            self._state[row], self._width
        )
        return sketch

    def import_row(self, row: int, sketch) -> None:
        self._check_row(row)
        if (
            type(sketch) is not type(self._template)
            or sketch.universe_size != self.universe_size
            or sketch.registers != self.registers
            or sketch.seed != self.seed
        ):
            raise ParameterError(
                "import_row needs a same-parameter, same-seed %s"
                % type(self._template).__name__
            )
        self._state[row] = sketch._registers.to_numpy().astype(self._state.dtype)

    # -- merging ---------------------------------------------------------------------

    def _merge_rows(self, other, my_rows, other_rows) -> None:
        mine = self._state[my_rows]
        np.maximum(mine, other._state[other_rows], out=mine)
        self._state[my_rows] = mine

    def _same_parameters(self, other) -> bool:
        return self.registers == other.registers

    def spawn_empty(self):
        return type(self)(
            self.universe_size,
            rows=0,
            eps=self.eps,
            registers=self.registers,
            seed=self.seed,
        )

    # -- space -----------------------------------------------------------------------

    def space_bits(self) -> int:
        """Row registers at their packed width; the shared oracle charges 0."""
        return self._rows * self.registers * self._width


class HyperLogLogSketchArray(_RegisterSketchArray):
    """N HyperLogLog counters as an ``(N, m)`` register matrix."""

    family = "hyperloglog"

    def _make_template(self, universe_size, eps, registers, seed):
        return HyperLogLogCounter(
            universe_size, eps=eps, registers=registers, seed=seed
        )

    def estimate_all(self) -> List[float]:
        """Every row's bias-corrected harmonic-mean estimate in one sweep."""
        if self._rows == 0:
            return []
        return self._estimates(self._state[: self._rows])

    def _estimate_row(self, row: int) -> float:
        return self._estimates(self._state[row : row + 1])[0]

    def _estimates(self, state):
        # Zero counts and harmonic sums are bulk (vectorized) reductions;
        # the final assembly runs per row with ``math.log``, because
        # ``np.log`` can differ from libm by an ulp and row estimates
        # must equal the scalar sketches' exactly.
        m = self.registers
        alpha = _alpha(m)
        values = state.astype(np.int32)
        zeros = (values == 0).sum(axis=1).tolist()
        inverse_sums = np.ldexp(1.0, -values).sum(axis=1).tolist()
        estimates = []
        for zero_registers, inverse_sum in zip(zeros, inverse_sums):
            raw = alpha * m * m / inverse_sum
            if raw <= 2.5 * m and zero_registers > 0:
                estimates.append(m * math.log(m / zero_registers))
            else:
                estimates.append(raw)
        return estimates


class LogLogSketchArray(_RegisterSketchArray):
    """N LogLog counters as an ``(N, m)`` register matrix."""

    family = "loglog"

    def _make_template(self, universe_size, eps, registers, seed):
        return LogLogCounter(universe_size, eps=eps, registers=registers, seed=seed)

    def estimate_all(self) -> List[float]:
        """Every row's ``alpha * m * 2^{mean register}`` in one sweep."""
        if self._rows == 0:
            return []
        return self._estimates(self._state[: self._rows])

    def _estimate_row(self, row: int) -> float:
        return self._estimates(self._state[row : row + 1])[0]

    def _estimates(self, state):
        # Register totals are one bulk (vectorized) reduction; the final
        # exponentiation uses Python's ``**`` per row because NumPy's
        # vectorized pow can differ from libm by an ulp, and estimates
        # must equal the scalar sketches' exactly.
        m = self.registers
        alpha = self._template._alpha
        totals = state.sum(axis=1, dtype=np.int64)
        return [alpha * m * (2.0 ** (total / m)) for total in totals.tolist()]


class LinearCountingSketchArray(SketchArray):
    """N linear-counting bitmaps as ``(N, ceil(bits/8))`` bit-planes.

    The per-row state uses exactly the :class:`BitVector` byte layout
    (bit ``i`` is bit ``i & 7`` of byte ``i >> 3``), so a row exports to
    an independent :class:`LinearCounter` by adopting its bytes.
    """

    family = "linear-counting"

    def __init__(
        self,
        universe_size: int,
        rows: int = 0,
        eps: float = 0.05,
        bits: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        """Create the array.

        Args:
            universe_size: the shared universe ``n``.
            rows: initial bitmap count.
            eps: accuracy target; sets ``bits`` to the registry's
                ``max(64, 4 / eps^2)`` when ``bits`` is omitted.
            bits: explicit bitmap size.
            seed: the shared seed (required).
        """
        super().__init__(universe_size, rows, seed)
        self.eps = eps
        if bits is None:
            bits = max(64, int(round(4.0 / (eps * eps))))
        self._template = LinearCounter(universe_size, bits=bits, seed=seed)
        self.bits = bits
        self._stride = (bits + 7) // 8
        self._state = np.zeros(
            (self._capacity_for(rows), self._stride), dtype=np.uint8
        )

    def _reserve(self, rows: int) -> None:
        self._state = self._grow_matrix(self._state, rows)

    # -- ingestion -------------------------------------------------------------------

    def _update_scalar(self, row: int, item: int, delta: Optional[int]) -> None:
        position = self._template._oracle(item)
        self._state[row, position >> 3] |= np.uint8(1 << (position & 7))

    def _update_grouped(self, rows, keys, deltas) -> None:
        positions = self._template._oracle.hash_batch_validated(keys).astype(
            np.int64
        )
        flat = rows * np.int64(self._stride) + (positions >> np.int64(3))
        masks = (
            np.left_shift(np.int64(1), positions & np.int64(7))
        ).astype(np.uint8)
        target = self._state[: self._rows].reshape(-1)
        grouped_or_scatter(target, flat, masks)

    # -- reporting -------------------------------------------------------------------

    def estimate_all(self) -> List[float]:
        """Every row's ``b ln(b / zeros)`` from one bulk popcount sweep."""
        if self._rows == 0:
            return []
        return self._estimates(self._state[: self._rows])

    def _estimate_row(self, row: int) -> float:
        return self._estimates(self._state[row : row + 1])[0]

    def _estimates(self, state):
        # Occupancy is one bulk popcount; the final logarithm runs per
        # row with ``math.log`` (``np.log`` can differ by an ulp, and row
        # estimates must equal the scalar LinearCounter's exactly).
        bits = self.bits
        ones = _popcount_table()[state].sum(axis=1, dtype=np.int64).tolist()
        return [
            bits * math.log(bits / ((bits - occupied) or 1)) for occupied in ones
        ]

    # -- row materialisation ---------------------------------------------------------

    def make_sketch(self):
        return serialize.loads(serialize.dumps(self._template))

    def export_row(self, row: int):
        self._check_row(row)
        sketch = self.make_sketch()
        sketch._bitmap = BitVector.from_buffer(
            self._state[row].tobytes(), self.bits
        )
        return sketch

    def import_row(self, row: int, sketch) -> None:
        self._check_row(row)
        if (
            type(sketch) is not LinearCounter
            or sketch.universe_size != self.universe_size
            or sketch.bits != self.bits
            or sketch.seed != self.seed
        ):
            raise ParameterError(
                "import_row needs a same-parameter, same-seed LinearCounter"
            )
        self._state[row] = np.frombuffer(
            bytes(sketch._bitmap._bytes), dtype=np.uint8
        )

    # -- merging ---------------------------------------------------------------------

    def _merge_rows(self, other, my_rows, other_rows) -> None:
        self._state[my_rows] |= other._state[other_rows]

    def _same_parameters(self, other) -> bool:
        return self.bits == other.bits

    def spawn_empty(self):
        return type(self)(
            self.universe_size, rows=0, eps=self.eps, bits=self.bits, seed=self.seed
        )

    def space_bits(self) -> int:
        """One bit per bitmap position per row; the shared oracle charges 0."""
        return self._rows * self.bits


class RoughSketchArray(SketchArray):
    """N KNW Figure 2 rough estimators as an ``(N, 3, K_RE)`` counter tensor.

    The KNW-family member of the store: each row is a
    :class:`~repro.core.rough_estimator.RoughEstimator` (three
    independent copies, ``K_RE`` counters each, counters holding the
    deepest ``lsb`` level, report = median of the per-copy threshold
    levels).  The polynomial ``h3`` family keeps every hash
    seed-determined, so all rows share one eagerly drawn hash bundle and
    grouped ingestion is three Carter--Wegman passes plus three grouped
    maxima per batch.

    Reporting vectorizes the Figure 2 threshold rule exactly: the largest
    level ``r`` with ``T_r >= rho K_RE`` is the ``ceil(rho K_RE)``-th
    largest counter value of the copy, computed for every row with one
    ``np.partition`` per report.
    """

    family = "knw-rough"

    def __init__(
        self,
        universe_size: int,
        rows: int = 0,
        counters_per_copy: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        """Create the array.

        Args:
            universe_size: the shared universe ``n``.
            rows: initial sketch count.
            counters_per_copy: ``K_RE`` override (defaults to the paper's
                ``max(8, log n / log log n)``).
            seed: the shared seed (required).
        """
        super().__init__(universe_size, rows, seed)
        self._template = RoughEstimator(
            universe_size,
            counters_per_copy=counters_per_copy,
            seed=seed,
            use_uniform_family=False,
        )
        self.counters_per_copy = self._template.counters_per_copy
        self.copies = len(self._template._copies)
        self._store_width = self._template._copies[0]._store_width
        self._threshold_rank = int(math.ceil(self._template._threshold))
        capacity = self._capacity_for(rows)
        self._state = np.zeros(
            (capacity, self.copies, self.counters_per_copy), dtype=np.int64
        )
        self._floors = np.full(capacity, -1.0, dtype=np.float64)

    def _reserve(self, rows: int) -> None:
        self._state = self._grow_matrix(self._state, rows)
        if rows > self._floors.shape[0]:
            grown = np.full(self._state.shape[0], -1.0, dtype=np.float64)
            grown[: self._floors.shape[0]] = self._floors
            self._floors = grown

    # -- ingestion -------------------------------------------------------------------

    def _update_scalar(self, row: int, item: int, delta: Optional[int]) -> None:
        for j, copy in enumerate(self._template._copies):
            level = lsb(copy.h1(item), zero_value=copy.level_limit)
            index = copy.h3(copy.h2(item))
            if level + 1 > int(self._state[row, j, index]):
                self._state[row, j, index] = level + 1

    def _update_grouped(self, rows, keys, deltas) -> None:
        stride = self.copies * self.counters_per_copy
        target = self._state[: self._rows].reshape(-1)
        base = rows * np.int64(stride)
        for j, copy in enumerate(self._template._copies):
            levels = lsb_batch(
                copy.h1.hash_batch_validated(keys), zero_value=copy.level_limit
            ) + np.int64(1)
            indices = copy.h3.hash_batch_validated(
                copy.h2.hash_batch_validated(keys)
            )
            if indices.dtype == object:
                indices = indices.astype(np.int64)
            else:
                indices = indices.astype(np.int64, copy=False)
            flat = base + np.int64(j * self.counters_per_copy) + indices
            grouped_max_scatter(target, flat, levels)

    # -- reporting -------------------------------------------------------------------

    def estimate_all(self) -> List[float]:
        """Every row's monotone rough estimate (median of three copies)."""
        if self._rows == 0:
            return []
        medians = self._medians(self._state[: self._rows])
        floors = self._floors[: self._rows]
        np.maximum(floors, medians, out=floors)
        return floors.tolist()

    def _estimate_row(self, row: int) -> float:
        median = float(self._medians(self._state[row : row + 1])[0])
        if median > self._floors[row]:
            self._floors[row] = median
        return float(self._floors[row])

    def _medians(self, state):
        count = self.counters_per_copy
        rank = count - self._threshold_rank
        kth = np.partition(state, rank, axis=2)[:, :, rank]
        exponents = (np.maximum(kth, 1) - 1).astype(np.int32)
        per_copy = np.where(
            kth >= 1, np.ldexp(float(count), exponents), -1.0
        )
        return np.sort(per_copy, axis=1)[:, self.copies // 2]

    # -- row materialisation ---------------------------------------------------------

    def make_sketch(self):
        return serialize.loads(serialize.dumps(self._template))

    def export_row(self, row: int):
        self._check_row(row)
        sketch = self.make_sketch()
        for j, copy in enumerate(sketch._copies):
            copy.counters = PackedCounterArray.from_numpy(
                self._state[row, j], self._store_width
            )
        sketch._monotone_floor = float(self._floors[row])
        return sketch

    def import_row(self, row: int, sketch) -> None:
        self._check_row(row)
        if (
            type(sketch) is not RoughEstimator
            or sketch.universe_size != self.universe_size
            or sketch.counters_per_copy != self.counters_per_copy
            or not sketch.shard_deterministic
        ):
            raise ParameterError(
                "import_row needs a same-parameter polynomial-family "
                "RoughEstimator"
            )
        for j, copy in enumerate(sketch._copies):
            self._state[row, j] = copy.counters.to_numpy().astype(np.int64)
        self._floors[row] = float(sketch._monotone_floor)

    # -- merging ---------------------------------------------------------------------

    def _merge_rows(self, other, my_rows, other_rows) -> None:
        mine = self._state[my_rows]
        np.maximum(mine, other._state[other_rows], out=mine)
        self._state[my_rows] = mine
        floors = self._floors[my_rows]
        np.maximum(floors, other._floors[other_rows], out=floors)
        self._floors[my_rows] = floors

    def _same_parameters(self, other) -> bool:
        return self.counters_per_copy == other.counters_per_copy

    def spawn_empty(self):
        return type(self)(
            self.universe_size,
            rows=0,
            counters_per_copy=self.counters_per_copy,
            seed=self.seed,
        )

    def space_bits(self) -> int:
        """Row counters at their packed width, plus the shared hash bundle."""
        hashes = sum(
            copy.h1.space_bits() + copy.h2.space_bits() + copy.h3.space_bits()
            for copy in self._template._copies
        )
        per_row = self.copies * self.counters_per_copy * self._store_width
        return hashes + self._rows * per_row


class ObjectSketchArray(SketchArray):
    """Generic fallback: one sketch object per row, cloned from a template.

    Rows are full estimator objects revived from one serialized template
    (so they share parameters and the seed-derived hash functions, like
    every struct-of-arrays family).  Grouped ingestion is one stable sort
    by row plus one vectorized ``update_batch`` per *touched* row — the
    per-item Python loop of the dict-of-sketches pattern disappears,
    while any registry estimator (KNW F0, the turnstile L0 sketches,
    median wrappers, ...) becomes store-backed without a bespoke layout.
    """

    family = "object"

    def __init__(self, template, rows: int = 0) -> None:
        """Create the array.

        Args:
            template: a freshly constructed (empty) estimator with an
                explicit seed; every row is a serialized clone of it.
            rows: initial sketch count.
        """
        universe_size = getattr(template, "universe_size", None)
        if universe_size is None:
            raise ParameterError(
                "ObjectSketchArray templates must expose universe_size"
            )
        seed = getattr(template, "seed", None)
        super().__init__(universe_size, 0, seed)
        self.turnstile = isinstance(template, TurnstileEstimator)
        self.family = "object:%s" % getattr(
            template, "name", type(template).__name__
        )
        self._template_blob = serialize.dumps(template)
        self._sketches: List = []
        if rows:
            self.grow(rows)

    def _reserve(self, rows: int) -> None:
        while len(self._sketches) < rows:
            self._sketches.append(serialize.loads(self._template_blob))

    # -- ingestion -------------------------------------------------------------------

    def _update_scalar(self, row: int, item: int, delta: Optional[int]) -> None:
        if self.turnstile:
            self._sketches[row].update(item, delta)
        else:
            self._sketches[row].update(item)

    def _update_grouped(self, rows, keys, deltas) -> None:
        # ``deltas`` arrives validated (base-class validate_batch).
        order, starts, touched = group_slices(rows)
        ends = np.append(starts[1:], np.int64(len(rows)))
        sorted_keys = keys[order]
        sorted_deltas = deltas[order] if self.turnstile else None
        for position, row in enumerate(touched.tolist()):
            lo = int(starts[position])
            hi = int(ends[position])
            sketch = self._sketches[row]
            if self.turnstile:
                sketch.update_batch(sorted_keys[lo:hi], sorted_deltas[lo:hi])
            else:
                sketch.update_batch(sorted_keys[lo:hi])

    # -- reporting -------------------------------------------------------------------

    def estimate_all(self) -> List[float]:
        return [sketch.estimate() for sketch in self._sketches[: self._rows]]

    def _estimate_row(self, row: int) -> float:
        return self._sketches[row].estimate()

    # -- row materialisation ---------------------------------------------------------

    def make_sketch(self):
        return serialize.loads(self._template_blob)

    def export_row(self, row: int):
        """Return the live row sketch (object-backed rows *are* sketches)."""
        self._check_row(row)
        return self._sketches[row]

    def import_row(self, row: int, sketch) -> None:
        self._check_row(row)
        if type(sketch) is not type(self._sketches[row]):
            raise ParameterError(
                "import_row needs a %s" % type(self._sketches[row]).__name__
            )
        self._sketches[row] = sketch

    # -- merging ---------------------------------------------------------------------

    def _merge_rows(self, other, my_rows, other_rows) -> None:
        for mine, theirs in zip(my_rows.tolist(), other_rows.tolist()):
            self._sketches[mine].merge(other._sketches[theirs])

    def _same_parameters(self, other) -> bool:
        return self._template_blob == other._template_blob

    def spawn_empty(self):
        return type(self)(serialize.loads(self._template_blob), rows=0)

    def space_bits(self) -> int:
        return sum(
            sketch.space_bits() for sketch in self._sketches[: self._rows]
        )


#: The true struct-of-arrays families, by registry name.
_SOA_FAMILIES = {
    "hyperloglog": HyperLogLogSketchArray,
    "loglog": LogLogSketchArray,
    "linear-counting": LinearCountingSketchArray,
    "knw-rough": RoughSketchArray,
}


def sketch_array_family_names() -> List[str]:
    """Return the families with a struct-of-arrays grouped-ingest layout."""
    return sorted(_SOA_FAMILIES)


def make_sketch_array(
    family: str,
    universe_size: int,
    rows: int = 0,
    eps: float = 0.05,
    seed: Optional[int] = None,
    **params,
) -> SketchArray:
    """Build a sketch array for ``family``.

    Struct-of-arrays families (:func:`sketch_array_family_names`) get
    their native layout; any other registered estimator name falls back
    to an :class:`ObjectSketchArray` over the registry template, so every
    algorithm in the library can be keyed by entity.

    Args:
        family: a struct-of-arrays family name, or any
            :mod:`repro.estimators.registry` F0/L0 name.
        universe_size: the shared universe ``n``.
        rows: initial sketch count.
        eps: accuracy target handed to the family/registry factory.
        seed: the shared seed (required).
        **params: family-specific overrides (``registers``, ``bits``,
            ``counters_per_copy``, ``magnitude_bound`` for L0 names).
    """
    if family == "knw-rough":
        return RoughSketchArray(universe_size, rows=rows, seed=seed, **params)
    if family in _SOA_FAMILIES:
        return _SOA_FAMILIES[family](
            universe_size, rows=rows, eps=eps, seed=seed, **params
        )
    from ..estimators.registry import (
        f0_algorithm_names,
        l0_algorithm_names,
        make_f0_estimator,
        make_l0_estimator,
    )

    if family in f0_algorithm_names():
        if params:
            raise ParameterError(
                "registry-backed families take no extra parameters: %r"
                % sorted(params)
            )
        return ObjectSketchArray(
            make_f0_estimator(family, universe_size, eps, seed), rows=rows
        )
    if family in l0_algorithm_names():
        magnitude_bound = params.pop("magnitude_bound", 1 << 30)
        if params:
            raise ParameterError(
                "registry-backed families take no extra parameters: %r"
                % sorted(params)
            )
        return ObjectSketchArray(
            make_l0_estimator(family, universe_size, eps, magnitude_bound, seed),
            rows=rows,
        )
    raise ParameterError(
        "unknown sketch family %r (struct-of-arrays: %s; plus any registry "
        "estimator name)" % (family, ", ".join(sketch_array_family_names()))
    )
