"""Key-addressed sketch collections: :class:`SketchStore`.

A :class:`SketchStore` maps arbitrary keys (column names, source
addresses, user ids, ...) to the rows of one
:class:`~repro.store.sketch_array.SketchArray` and grows as new keys
appear.  It is the subsystem the keyed applications sit on: "a sketch
per entity" becomes one store whose whole keyed batch ingests through
:meth:`update_grouped` — one shared hash pass, one sort/group scatter —
instead of one Python call per entity per item.

Stores serialize through the standard :mod:`repro.serialize` machinery
(``state_dict`` / ``to_bytes``), merge key-wise (:meth:`merge_from`),
and shard across processes by key through
:func:`repro.parallel.parallel_ingest_keyed`: because every key's
updates land in exactly one shard, merging worker stores back is exact
for max/OR families *and* for additive turnstile families alike.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..estimators.base import SerializableState
from ..exceptions import MergeError, ParameterError
from ..vectorize import HAS_NUMPY, np, require_numpy
from .families import make_sketch_array
from .sketch_array import SketchArray

__all__ = ["SketchStore"]


class SketchStore(SerializableState):
    """A growable, key-addressed collection of homologous sketches.

    Attributes:
        family: the underlying array's family name.
    """

    def __init__(self, array: SketchArray, keys: Iterable = ()) -> None:
        """Wrap ``array``, optionally pre-registering ``keys``.

        Args:
            array: the backing sketch array.  Rows it already holds must
                be covered by ``keys`` (a store addresses rows by key
                only): the first ``array.rows`` distinct keys name the
                existing rows in order, and any further keys grow fresh
                rows.
            keys: initial keys, mapped to rows in iteration order.
        """
        if not isinstance(array, SketchArray):
            raise ParameterError("SketchStore wraps a SketchArray")
        self._array = array
        self._keys: List = []
        self._key_to_row: Dict = {}
        for key in keys:
            if key not in self._key_to_row:
                self._key_to_row[key] = len(self._keys)
                self._keys.append(key)
        if array.rows > len(self._keys):
            raise ParameterError(
                "array holds %d rows but only %d keys were provided to "
                "name them" % (array.rows, len(self._keys))
            )
        if len(self._keys) > array.rows:
            array.grow(len(self._keys) - array.rows)

    @classmethod
    def for_family(
        cls,
        family: str,
        universe_size: int,
        keys: Iterable = (),
        eps: float = 0.05,
        seed: Optional[int] = None,
        **params,
    ) -> "SketchStore":
        """Build a store over :func:`repro.store.families.make_sketch_array`."""
        store = cls(
            make_sketch_array(
                family, universe_size, rows=0, eps=eps, seed=seed, **params
            )
        )
        store.add_keys(keys)
        return store

    # -- introspection ---------------------------------------------------------------

    @property
    def array(self) -> SketchArray:
        """The backing sketch array."""
        return self._array

    @property
    def family(self) -> str:
        return self._array.family

    @property
    def keys(self) -> List:
        """The tracked keys, in row order (insertion order)."""
        return list(self._keys)

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key) -> bool:
        return key in self._key_to_row

    def row_of(self, key) -> int:
        """Return the row index of ``key`` (which must be tracked)."""
        row = self._key_to_row.get(key)
        if row is None:
            raise ParameterError("unknown key %r" % (key,))
        return row

    # -- key management --------------------------------------------------------------

    def add_keys(self, keys: Iterable) -> None:
        """Register keys (duplicates and already-known keys are fine)."""
        fresh = []
        seen = self._key_to_row
        for key in keys:
            if key not in seen:
                seen[key] = len(self._keys) + len(fresh)
                fresh.append(key)
        if fresh:
            self._array.grow(len(fresh))
            self._keys.extend(fresh)

    def _rows_for(self, keys, length: int):
        """Map a per-update key batch to row indices, creating new keys.

        Integer key batches take the vectorized path: one ``np.unique``
        collapses the batch to its distinct keys, so the Python dict is
        consulted once per *distinct* key rather than once per update.
        """
        require_numpy("SketchStore.update_grouped")
        lookup = self._key_to_row
        arr = keys if isinstance(keys, np.ndarray) else np.asarray(keys)
        if arr.dtype.kind in ("i", "u") and arr.ndim == 1:
            if len(arr) != length:
                raise ParameterError(
                    "update_grouped needs one key per item"
                )
            unique, first_seen, inverse = np.unique(
                arr, return_index=True, return_inverse=True
            )
            unique_rows = np.empty(len(unique), dtype=np.int64)
            fresh = []
            for position, key in enumerate(unique.tolist()):
                row = lookup.get(key, -1)
                unique_rows[position] = row
                if row < 0:
                    fresh.append(position)
            if fresh:
                # Register new keys in first-occurrence order — exactly the
                # order the scalar update loop would discover them — so a
                # grouped batch and the equivalent update() loop build
                # bit-identical stores (same key -> row assignment).
                fresh.sort(key=lambda position: int(first_seen[position]))
                first = self._array.grow(len(fresh))
                for offset, position in enumerate(fresh):
                    key = int(unique[position])
                    row = first + offset
                    lookup[key] = row
                    unique_rows[position] = row
                    self._keys.append(key)
            return unique_rows[inverse]
        # Generic (string / mixed) keys: one dict lookup per update.
        materialised = list(keys) if not isinstance(keys, (list, tuple)) else keys
        if len(materialised) != length:
            raise ParameterError("update_grouped needs one key per item")
        rows = np.empty(len(materialised), dtype=np.int64)
        for position, key in enumerate(materialised):
            row = lookup.get(key)
            if row is None:
                self.add_keys((key,))
                row = lookup[key]
            rows[position] = row
        return rows

    # -- ingestion -------------------------------------------------------------------

    def update(self, key, item: int, delta: Optional[int] = None) -> None:
        """Apply one update to ``key``'s sketch (creating it on first use)."""
        row = self._key_to_row.get(key)
        if row is None:
            # Validate before registering, so a rejected update does not
            # leave a fresh empty sketch behind.
            self._array.validate_batch([item], None if delta is None else [delta])
            self.add_keys((key,))
            row = self._key_to_row[key]
        self._array.update(row, item, delta)

    def update_grouped(self, keys, items, deltas=None) -> None:
        """Ingest a keyed batch: item ``items[i]`` updates ``keys[i]``'s sketch.

        The batch is validated up front (all-or-nothing: a rejected batch
        registers no keys and mutates no state), new keys are registered
        in first-occurrence order (rows grown once for the whole batch),
        and the updates flow through the array's grouped vectorized sweep
        — bit-identical to looping :meth:`update` over the triples in
        order, at batch throughput.

        Args:
            keys: one key per item (integer ndarray for the fast path;
                any hashables otherwise).
            items: identifiers in ``[0, universe_size)``.
            deltas: signed deltas for turnstile families.
        """
        items, deltas = self._array.validate_batch(items, deltas)
        rows = self._rows_for(keys, len(items))
        self._array.ingest_validated(rows, items, deltas)

    def update_batch(self, key, items, deltas=None) -> None:
        """Bulk-ingest one key's updates (creating its sketch on first use).

        An empty batch is a complete no-op: like the equivalent
        :meth:`update` loop and :meth:`update_grouped` call, it registers
        no key, so all three ingestion paths build byte-identical stores.
        """
        items, deltas = self._array.validate_batch(items, deltas)
        if not len(items):
            return
        row = self._key_to_row.get(key)
        if row is None:
            self.add_keys((key,))
            row = self._key_to_row[key]
        self._array.ingest_validated(
            np.full(len(items), row, dtype=np.int64), items, deltas
        )

    # -- reporting -------------------------------------------------------------------

    def estimate(self, key) -> float:
        """Return ``key``'s current estimate."""
        return float(self._array.estimate_row(self.row_of(key)))

    def estimate_all(self) -> Dict:
        """Return every key's estimate from one bulk state sweep."""
        return dict(zip(self._keys, self._array.estimate_all()))

    def sketch(self, key):
        """Materialise ``key``'s sketch (see :meth:`SketchArray.export_row`)."""
        return self._array.export_row(self.row_of(key))

    def load_sketch(self, key, sketch) -> None:
        """Replace ``key``'s state with ``sketch``'s (inverse of :meth:`sketch`)."""
        self._array.import_row(self.row_of(key), sketch)

    def make_sketch(self):
        """Return a fresh empty sketch of the store's family."""
        return self._array.make_sketch()

    def space_bits(self) -> int:
        """Return the store's total state footprint in bits."""
        return self._array.space_bits()

    # -- merging / sharding ----------------------------------------------------------

    def merge_from(self, other: "SketchStore") -> None:
        """Merge another store key-wise (the store-level rollup).

        Keys present in both stores merge row-wise exactly as the
        corresponding independent sketches would; keys only in ``other``
        are adopted (grown as fresh rows, then merged — exact for max/OR
        unions and for additive turnstile merges alike).  Both stores
        must share family, parameters, and seed.
        """
        if not isinstance(other, SketchStore):
            raise MergeError("merge_from expects a SketchStore")
        if not HAS_NUMPY:  # pragma: no cover - numpy is a declared dependency
            require_numpy("SketchStore.merge_from")
        self.add_keys(other._keys)
        my_rows = np.fromiter(
            (self._key_to_row[key] for key in other._keys),
            dtype=np.int64,
            count=len(other._keys),
        )
        other_rows = np.arange(len(other._keys), dtype=np.int64)
        self._array.merge_rows(other._array, my_rows, other_rows)

    def spawn_empty(self) -> "SketchStore":
        """Return an empty store with identical family, parameters, and seed."""
        return SketchStore(self._array.spawn_empty())

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return "SketchStore(family=%r, keys=%d)" % (self.family, len(self._keys))
