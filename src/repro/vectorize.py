"""NumPy substrate and kernel-dispatch seam for the batch-ingestion pipeline.

Every estimator exposes ``update_batch(items)`` (see
:class:`repro.estimators.base.CardinalityEstimator`); the vectorized
overrides all reduce to the same handful of primitives, which this module
exposes:

* converting an arbitrary integer sequence into a validated ``uint64``
  key array (:func:`as_key_array`) and signed deltas into a validated
  turnstile array (:func:`as_delta_array`) — plain NumPy, no dispatch;
* the *hot kernels* — exact batched modular arithmetic for the
  Carter--Wegman families (:func:`mulmod`, :func:`affine_mod`,
  :func:`mod_range`, and the fused :func:`affine_mod_range` /
  :func:`kwise_mod_range` chains), the grouped scatter reductions
  (:func:`grouped_residue_sums`, :func:`grouped_max_scatter`,
  :func:`grouped_or_scatter`), and the vectorized de Bruijn
  :func:`lsb64_batch`.

The hot kernels are thin dispatchers: each call routes to the active
backend in :mod:`repro.kernels` (``REPRO_KERNEL_BACKEND=numpy|compiled|
auto``, or :func:`repro.kernels.set_backend`).  The NumPy backend
(:mod:`repro.kernels.numpy_backend`) is the always-available reference;
the compiled backend fuses each chain into a single C pass.  Backends are
resolved lazily on the first kernel call — importing this module still
works without numpy, and never triggers a compile.

All routines here are *exact* — batch ingestion must produce bit-identical
sketch state to the scalar loop (``tests/test_batch_equivalence.py``), and
every backend must produce bit-identical output to the NumPy reference on
every state word, so no primitive is allowed to trade correctness for
speed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from .exceptions import ParameterError
from . import kernels as _kernels

try:  # pragma: no cover - exercised implicitly by every batch test
    import numpy as np
except ImportError:  # pragma: no cover - the CI image always has numpy
    np = None  # type: ignore[assignment]

__all__ = [
    "np",
    "HAS_NUMPY",
    "require_numpy",
    "as_key_array",
    "as_delta_array",
    "residues_mod",
    "grouped_residue_sums",
    "mulmod",
    "affine_mod",
    "mod_range",
    "affine_mod_range",
    "kwise_mod_range",
    "mulmod_arrays",
    "lsb64_batch",
    "group_slices",
    "grouped_max_scatter",
    "grouped_or_scatter",
]

HAS_NUMPY = np is not None


def require_numpy(feature: str) -> None:
    """Raise a clear error when a vectorized path is hit without numpy."""
    if not HAS_NUMPY:
        raise ParameterError(
            "%s requires numpy; install it (pip install numpy, or the "
            "package's declared dependencies: pip install .) or use the "
            "scalar update() API" % feature
        )


# --------------------------------------------------------------------------
# Batch-input validation (plain NumPy, not backend-dispatched).
# --------------------------------------------------------------------------


def as_key_array(
    items: Union[Sequence[int], "np.ndarray"],
    universe_size: Optional[int] = None,
) -> "np.ndarray":
    """Convert a batch of item identifiers to a validated ``uint64`` array.

    This is the single entry point for batch-input validation: every
    ``update_batch`` override funnels its ``items`` through here, so dtype
    handling and range checking are uniform across estimators.

    Args:
        items: any integer sequence or ndarray.  Identifiers must be
            non-negative and, like the scalar API, fit the word-RAM model's
            64-bit words.
        universe_size: when given, every identifier must lie in
            ``[0, universe_size)`` — the same check the scalar ``update``
            performs per item, applied once to the whole batch *before* any
            state is mutated (batch validation is all-or-nothing).

    Returns:
        A ``uint64`` ndarray (zero-copy when ``items`` already is one).
        Inputs with identifiers beyond 64 bits — object-dtype arrays, or
        sequences of large Python ints for universes past ``2^64`` — are
        validated and returned as object arrays, which every
        ``hash_batch`` accepts (exact, slower).

    Raises:
        ParameterError: on negative or out-of-universe identifiers.
    """
    require_numpy("batch ingestion")
    if isinstance(items, np.ndarray):
        if items.dtype == np.uint64:
            keys = items
        elif items.dtype == object:
            keys = items
        else:
            if items.dtype.kind not in ("i", "u"):
                raise ParameterError("batch items must be integers")
            if items.size and items.dtype.kind == "i" and int(items.min()) < 0:
                raise ParameterError("item identifiers must be non-negative")
            keys = items.astype(np.uint64)
    else:
        try:
            # Infer the dtype first so a float anywhere in the sequence is
            # *rejected*, not silently truncated by a uint64 cast, and so
            # negative Python ints stay signed instead of wrapping.
            inferred = np.asarray(items)
        except (TypeError, ValueError, OverflowError) as exc:
            if universe_size is not None and universe_size > (1 << 64):
                # Giant universes: keep exact Python ints in an object array.
                keys = np.empty(len(items), dtype=object)
                keys[:] = list(items)
            else:
                raise ParameterError(
                    "batch items must be non-negative integers"
                ) from exc
        else:
            if inferred.size == 0:
                # Empty sequences infer as float64; they are trivially valid.
                keys = inferred.astype(np.uint64)
            elif inferred.dtype == object:
                keys = inferred
            elif inferred.dtype.kind == "i":
                if int(inferred.min()) < 0:
                    raise ParameterError("item identifiers must be non-negative")
                keys = inferred.astype(np.uint64)
            elif inferred.dtype.kind in ("u", "b"):
                keys = inferred.astype(np.uint64)
            else:
                raise ParameterError("batch items must be integers")
    if keys.ndim != 1:
        keys = keys.reshape(-1)
    if keys.dtype == object and keys.size:
        for key in keys.tolist():
            if not isinstance(key, int) or key < 0:
                raise ParameterError("batch items must be non-negative integers")
    if universe_size is not None and keys.size:
        top = int(keys.max())
        if top >= universe_size:
            raise ParameterError(
                "item %d outside universe [0, %d)" % (top, universe_size)
            )
    return keys


def as_delta_array(
    deltas: Union[Sequence[int], "np.ndarray"],
    expected_length: Optional[int] = None,
) -> "np.ndarray":
    """Convert a batch of signed turnstile deltas to a validated array.

    The turnstile counterpart of :func:`as_key_array`: every
    ``update_batch(items, deltas)`` override funnels its ``deltas``
    through here so dtype handling and the length check are uniform.

    Args:
        deltas: any integer sequence or ndarray; values may be negative.
        expected_length: when given, the batch must have exactly this many
            deltas (one per item) — the same check the base-class loop
            performs, applied before any state is mutated.

    Returns:
        An ``int64`` ndarray, or an object array of exact Python ints when
        some delta does not fit a signed 64-bit word.

    Raises:
        UpdateError: on a length mismatch.
        ParameterError: on non-integer deltas.
    """
    require_numpy("batch ingestion")
    from .exceptions import UpdateError

    if not isinstance(deltas, np.ndarray):
        # Let NumPy infer the dtype first: a float anywhere in the
        # sequence must *raise*, not silently truncate (an int64 cast
        # would turn delta 2.7 into 2 and break batch/scalar
        # equivalence); oversized Python ints infer as object.
        deltas = np.asarray(deltas)
    if deltas.size == 0:
        values = deltas.reshape(-1).astype(np.int64)
    elif deltas.dtype == np.int64 or deltas.dtype == object:
        values = deltas
    elif deltas.dtype.kind in ("i", "b"):
        values = deltas.astype(np.int64)
    elif deltas.dtype.kind == "u":
        if deltas.size and int(deltas.max()) > (1 << 63) - 1:
            values = _to_object_array(deltas)
        else:
            values = deltas.astype(np.int64)
    else:
        raise ParameterError("batch deltas must be integers")
    if values.dtype == object:
        for value in values.tolist():
            if not isinstance(value, int):
                raise ParameterError("batch deltas must be integers")
    if values.ndim != 1:
        values = values.reshape(-1)
    if expected_length is not None and len(values) != expected_length:
        raise UpdateError("update_batch requires as many deltas as items")
    return values


def _to_object_array(values: "np.ndarray") -> "np.ndarray":
    """Convert a numeric ndarray to an object array of Python ints."""
    if values.dtype == object:
        return values
    out = np.empty(values.shape, dtype=object)
    out[:] = [int(v) for v in values.tolist()]
    return out


def residues_mod(deltas: "np.ndarray", prime: int) -> "np.ndarray":
    """Return ``deltas % prime`` as non-negative residues, exactly.

    Words suffice whenever the deltas fit ``int64`` and the modulus fits a
    signed word (NumPy's ``%`` follows Python's sign-of-divisor rule, so
    the residues are already non-negative); anything larger degrades to an
    object array of Python ints.
    """
    if deltas.dtype == object or prime >= (1 << 63):
        return _to_object_array(deltas) % prime
    return (deltas % np.int64(prime)).astype(np.uint64)


# --------------------------------------------------------------------------
# Hot kernels: thin dispatchers into the active repro.kernels backend.
#
# Contract (enforced by tests/test_kernels.py and the load-time self-test
# of the compiled backend): every backend returns bit-identical values
# *and dtypes* to repro.kernels.numpy_backend, which holds the reference
# implementations and the full per-kernel documentation.
# --------------------------------------------------------------------------


def mulmod(
    multiplier: int,
    keys: "np.ndarray",
    prime: int,
    key_bound: int,
) -> "np.ndarray":
    """Return ``(multiplier * keys) % prime`` exactly, elementwise.

    Args:
        multiplier: a scalar in ``[0, prime)``.
        keys: ``uint64`` (or object) array with values in ``[0, key_bound)``.
        prime: the field modulus.
        key_bound: exclusive upper bound on the key values; selects the
            fastest exact strategy.

    Returns:
        A ``uint64`` array when the arithmetic fits in words, otherwise an
        object array of Python integers.
    """
    return _kernels.active().mulmod(multiplier, keys, prime, key_bound)


def affine_mod(
    multiplier: int,
    offset: int,
    keys: "np.ndarray",
    prime: int,
    key_bound: int,
) -> "np.ndarray":
    """Return ``(multiplier * keys + offset) % prime`` exactly, elementwise."""
    return _kernels.active().affine_mod(multiplier, offset, keys, prime, key_bound)


def mod_range(values: "np.ndarray", range_size: int) -> "np.ndarray":
    """Reduce hash values modulo an output range, cheaply where possible.

    Power-of-two ranges become a mask (the common case for the estimators'
    bin counts and the cubed spreading domains); ranges at least ``2^64``
    leave 64-bit values untouched; everything else pays one division pass.
    """
    return _kernels.active().mod_range(values, range_size)


def affine_mod_range(
    multiplier: int,
    offset: int,
    keys: "np.ndarray",
    prime: int,
    key_bound: int,
    range_size: int,
) -> "np.ndarray":
    """The full Carter--Wegman chain ``((a*k + b) % p) % v``, elementwise.

    The whole :meth:`repro.hashing.universal.PairwiseHash.hash_batch_validated`
    evaluation as one seam kernel, so compiled backends fuse the hash →
    range chain into a single pass instead of materializing the field
    values in between.
    """
    return _kernels.active().affine_mod_range(
        multiplier, offset, keys, prime, key_bound, range_size
    )


def kwise_mod_range(
    coefficients,
    keys: "np.ndarray",
    prime: int,
    key_bound: int,
    range_size: int,
) -> "np.ndarray":
    """Evaluate a Carter--Wegman polynomial on a whole key array, reduced.

    The whole :meth:`repro.hashing.kwise.KWiseHash.hash_batch_validated`
    chain — Horner's rule over ``k`` coefficients (low degree first, all in
    ``[0, prime)``) followed by one range reduction — as one seam kernel,
    so compiled backends fuse all ``k`` field operations into a single
    pass per key.
    """
    return _kernels.active().kwise_mod_range(
        coefficients, keys, prime, key_bound, range_size
    )


def mulmod_arrays(
    left: "np.ndarray",
    right: "np.ndarray",
    prime: int,
    right_bound: int,
) -> "np.ndarray":
    """Return ``(left * right) % prime`` exactly for two arrays.

    ``left`` may hold any values in ``[0, prime)``; ``right`` values must lie
    in ``[0, right_bound)``.  Used by the Horner evaluation of the k-wise
    polynomial families, where the accumulator is a full field element but
    the evaluation point is bounded by the hash's key domain.
    """
    return _kernels.active().mulmod_arrays(left, right, prime, right_bound)


def grouped_residue_sums(
    group_index: "np.ndarray",
    group_count: int,
    residues: "np.ndarray",
    prime: int,
) -> List[int]:
    """Sum residues per group exactly, returning plain Python ints.

    This is the scatter-accumulate core of the turnstile batch paths: the
    per-item fingerprint/counter contributions (each already reduced to
    ``[0, prime)``) are summed per touched cell, and the caller folds one
    total into each cell with a single exact ``% prime``.  Equivalence
    with the scalar loop is algebraic: ``(((c + r1) % p) + r2) % p ==
    (c + r1 + r2) % p``.

    Args:
        group_index: ``int64`` array mapping each residue to its group
            (as produced by ``np.unique(..., return_inverse=True)``).
        group_count: number of groups.
        residues: per-item contributions in ``[0, prime)``.
        prime: the modulus the residues were reduced by.
    """
    return _kernels.active().grouped_residue_sums(
        group_index, group_count, residues, prime
    )


def group_slices(indices: "np.ndarray"):
    """Sort a batch by group index and return the per-group structure.

    A NumPy helper (not a dispatched kernel): one stable argsort brings
    equal indices together, and the run boundaries identify each touched
    group exactly once.  See
    :func:`repro.kernels.numpy_backend.group_slices`.
    """
    from .kernels import numpy_backend

    return numpy_backend.group_slices(indices)


def grouped_max_scatter(
    target: "np.ndarray", indices: "np.ndarray", values: "np.ndarray"
) -> None:
    """Apply ``target[i] = max(target[i], v)`` for a whole batch, grouped.

    The bulk register/counter reduction behind ``update_grouped``.
    Identical to applying the pairs one at a time in any order — maximum
    is commutative, associative, and idempotent.

    Args:
        target: 1-D integer ndarray, mutated in place.
        indices: positions into ``target`` (already range-validated by
            the caller's hashing); duplicates reduce together.
        values: candidate values; must fit ``target``'s dtype (callers
            cap them at the counter width, as the scalar paths do).
    """
    return _kernels.active().grouped_max_scatter(target, indices, values)


def grouped_or_scatter(
    target: "np.ndarray", indices: "np.ndarray", masks: "np.ndarray"
) -> None:
    """Apply ``target[i] |= mask`` for a whole batch, grouped.

    The bitmap counterpart of :func:`grouped_max_scatter` (OR is likewise
    commutative, associative, and idempotent), used by the bit-plane
    sketch arrays to set many bits across many bitmaps in one pass.

    Args:
        target: 1-D ``uint8`` byte buffer, mutated in place.
        indices: byte positions into ``target``; duplicates OR together.
        masks: per-entry ``uint8`` bit masks.
    """
    return _kernels.active().grouped_or_scatter(target, indices, masks)


def lsb64_batch(values: "np.ndarray", zero_value: int) -> "np.ndarray":
    """Vectorized least-significant-set-bit of 64-bit words.

    The de Bruijn multiplication of :func:`repro.hashing.bitops.lsb64`
    applied to a whole ``uint64`` array; entries equal to zero map to
    ``zero_value`` (the paper's ``lsb(0) = log n`` convention).

    Args:
        values: ``uint64`` array.
        zero_value: result assigned to zero entries.

    Returns:
        An ``int64`` array of bit indices (or ``zero_value``).
    """
    return _kernels.active().lsb64_batch(values, zero_value)
