"""Sketch serialization: ``state_dict`` snapshots and a binary wire format.

Every sketch in the library is mergeable-or-transportable state plus
construction-time parameters, which is exactly what distributed F0
estimation needs: a worker ingests its shard, ships the sketch to a
coordinator, and the coordinator revives it and merge-reduces.  This
module provides that transport for *every* estimator (and their internal
components — hash families, bit structures, shared RNGs) without
``pickle``:

* :func:`snapshot` — capture an object's complete state as a plain tree
  of Python values (``state_dict()`` on the estimator base classes).
  Nested library objects become explicit ``{"__object__": ...}`` nodes;
  *shared* sub-objects (e.g. the one ``random.Random`` that the three
  RoughEstimator copies draw their lazy hash values from, or the
  ``F0HashBundle`` shared between the small-F0 and Figure 3 regimes) are
  captured once and referenced thereafter, so reviving a snapshot
  restores the exact aliasing structure — a requirement for
  bit-identical *continued* ingestion, not just for frozen state.
* :func:`restore` — load a snapshot back into an existing instance
  (``load_state_dict()``), torch-style: construct the estimator with the
  same parameters, then restore.
* :func:`dumps` / :func:`loads` — frame a snapshot as bytes
  (``to_bytes()`` / ``from_bytes()``): a magic header, a format version,
  and a compact tag-length-value encoding of the tree.  Unlike
  ``pickle``, decoding only ever instantiates classes from inside the
  ``repro`` package (plus ``random.Random``), so a payload cannot name
  arbitrary importable callables.

The supported value set is deliberately closed: ``None``, ``bool``,
``int`` (arbitrary precision — the bit-packed counter buffers are
multi-thousand-bit Python integers), ``float`` (bit-exact via IEEE-754
encoding), ``str``, ``bytes``, ``bytearray``, ``list``, ``tuple``,
``dict``, ``set``/``frozenset``, NumPy arrays and scalars,
``random.Random``, and objects of classes defined inside ``repro``.
Anything else raises :class:`~repro.exceptions.SerializationError` at
*encode* time, so a sketch that grows unsupported state fails loudly in
its own round-trip test rather than corrupting a worker transport.
"""

from __future__ import annotations

import importlib
import random
import struct
from typing import Any, Dict, List, Optional, Tuple

from .exceptions import SerializationError
from .vectorize import HAS_NUMPY, np

__all__ = [
    "snapshot",
    "restore",
    "dumps",
    "loads",
    "dumps_tree",
    "loads_tree",
    "FORMAT_MAGIC",
    "FORMAT_VERSION",
]

#: Frame header of the byte format produced by :func:`dumps`.
FORMAT_MAGIC = b"RPRS"

#: Version byte following the magic; bumped on incompatible changes.
FORMAT_VERSION = 1

#: Only classes whose defining module lives under this package (or is the
#: stdlib ``random`` module, for RNG state) may be revived by decoding.
_TRUSTED_PACKAGE = __name__.split(".")[0]


# ---------------------------------------------------------------------------
# Snapshot: object graph -> plain tree
# ---------------------------------------------------------------------------


def _is_library_object(value: Any) -> bool:
    module = type(value).__module__ or ""
    return module == _TRUSTED_PACKAGE or module.startswith(_TRUSTED_PACKAGE + ".")


def _instance_fields(value: Any) -> List[Tuple[str, Any]]:
    """Return the set attributes of ``value`` (``__dict__`` and ``__slots__``)."""
    fields: List[Tuple[str, Any]] = []
    if hasattr(value, "__dict__"):
        fields.extend(value.__dict__.items())
    for klass in type(value).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            if slot in ("__dict__", "__weakref__"):
                continue
            try:
                fields.append((slot, getattr(value, slot)))
            except AttributeError:
                continue  # slot declared but never assigned
    return fields


class _Snapshotter:
    """One snapshot pass: assigns node ids so shared objects encode once."""

    def __init__(self) -> None:
        self._memo: Dict[int, int] = {}
        self._keepalive: List[Any] = []  # ids stay unique while we run
        self._next_id = 0

    def _remember(self, value: Any) -> int:
        node_id = self._next_id
        self._next_id += 1
        self._memo[id(value)] = node_id
        self._keepalive.append(value)
        return node_id

    def encode(self, value: Any) -> Any:
        if value is None or isinstance(value, (bool, int, float, str, bytes)):
            return value
        if isinstance(value, bytearray):
            return {"__bytearray__": bytes(value)}
        if isinstance(value, list):
            return [self.encode(entry) for entry in value]
        if isinstance(value, tuple):
            return {"__tuple__": [self.encode(entry) for entry in value]}
        if isinstance(value, dict):
            items = list(value.items())
            # Canonical key order: two dicts holding equal entries must
            # snapshot identically even when their *insertion* orders
            # differ (e.g. a sample dict built shard-by-shard-then-merged
            # versus sequentially) — no sketch's behaviour depends on
            # dict iteration order, so insertion order is not state.
            if all(isinstance(key, (int, float, str, bytes, bool)) for key, _ in items):
                items.sort(key=lambda pair: (type(pair[0]).__name__, pair[0]))
            return {
                "__map__": [
                    [self.encode(key), self.encode(entry)] for key, entry in items
                ]
            }
        if isinstance(value, (set, frozenset)):
            try:
                ordered = sorted(value)
            except TypeError:
                ordered = list(value)
            marker = "__frozenset__" if isinstance(value, frozenset) else "__set__"
            return {marker: [self.encode(entry) for entry in ordered]}
        if HAS_NUMPY and isinstance(value, np.ndarray):
            if value.dtype == object:
                return {
                    "__ndarray__": {
                        "dtype": "object",
                        "shape": list(value.shape),
                        "items": [self.encode(entry) for entry in value.ravel().tolist()],
                    }
                }
            return {
                "__ndarray__": {
                    "dtype": value.dtype.str,
                    "shape": list(value.shape),
                    "data": np.ascontiguousarray(value).tobytes(),
                }
            }
        if HAS_NUMPY and isinstance(value, np.generic):
            return {"__npscalar__": value.dtype.str, "data": value.tobytes()}
        if isinstance(value, random.Random):
            known = self._memo.get(id(value))
            if known is not None:
                return {"__ref__": known}
            node_id = self._remember(value)
            return {"__random__": node_id, "__state__": self.encode(value.getstate())}
        if _is_library_object(value):
            known = self._memo.get(id(value))
            if known is not None:
                return {"__ref__": known}
            node_id = self._remember(value)
            klass = type(value)
            state = {name: self.encode(entry) for name, entry in _instance_fields(value)}
            return {
                "__object__": "%s:%s" % (klass.__module__, klass.__qualname__),
                "__id__": node_id,
                "__state__": state,
            }
        raise SerializationError(
            "cannot serialize a value of type %r (module %r); sketch state "
            "must stay within the supported type set"
            % (type(value).__name__, type(value).__module__)
        )


def snapshot(value: Any) -> Dict[str, Any]:
    """Return a ``state_dict`` tree capturing ``value``'s complete state.

    The result contains only plain Python values (plus ``bytes`` for raw
    buffers) and is safe to hold, compare, or encode with :func:`dumps`.
    Two sketches with equal snapshots are in bit-identical state.
    """
    tree = _Snapshotter().encode(value)
    if not (isinstance(tree, dict) and "__object__" in tree):
        raise SerializationError(
            "snapshot() expects a library object, got %r" % type(value).__name__
        )
    return tree


# ---------------------------------------------------------------------------
# Rebuild: plain tree -> object graph
# ---------------------------------------------------------------------------


def _resolve_class(path: str) -> type:
    module_name, _, qualname = path.partition(":")
    if not (
        module_name == _TRUSTED_PACKAGE
        or module_name.startswith(_TRUSTED_PACKAGE + ".")
    ):
        raise SerializationError(
            "refusing to revive class %r from outside the %r package"
            % (path, _TRUSTED_PACKAGE)
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as error:
        raise SerializationError("cannot import module %r" % module_name) from error
    target: Any = module
    for piece in qualname.split("."):
        target = getattr(target, piece, None)
        if target is None:
            raise SerializationError("class %r not found" % path)
    if not isinstance(target, type):
        raise SerializationError("%r does not name a class" % path)
    return target


# A damaged payload must surface as SerializationError, never as whatever
# low-level exception the damage happens to trip first.  The decode entry
# points funnel through this guard; SerializationError itself passes
# through untouched (it is a ValueError subclass, so it must be re-raised
# before the blanket ValueError arm).
_DECODE_ERRORS = (
    KeyError,
    IndexError,
    TypeError,
    ValueError,
    AttributeError,
    OverflowError,
    MemoryError,
    struct.error,
)


def _guarded(fn, *args):
    try:
        return fn(*args)
    except SerializationError:
        raise
    except _DECODE_ERRORS as error:
        raise SerializationError(
            "malformed payload: %s: %s" % (type(error).__name__, error)
        ) from error


class _Rebuilder:
    """One rebuild pass; mirrors the memo discipline of :class:`_Snapshotter`."""

    def __init__(self) -> None:
        self._memo: Dict[int, Any] = {}

    def decode(self, node: Any) -> Any:
        if node is None or isinstance(node, (bool, int, float, str, bytes)):
            return node
        if isinstance(node, list):
            return [self.decode(entry) for entry in node]
        if isinstance(node, dict):
            if "__tuple__" in node:
                return tuple(self.decode(entry) for entry in node["__tuple__"])
            if "__map__" in node:
                entries = node["__map__"]
                if not isinstance(entries, list) or any(
                    not isinstance(pair, (list, tuple)) or len(pair) != 2
                    for pair in entries
                ):
                    raise SerializationError("malformed __map__ node")
                return {
                    self.decode(key): self.decode(entry) for key, entry in entries
                }
            if "__set__" in node:
                return {self.decode(entry) for entry in node["__set__"]}
            if "__frozenset__" in node:
                return frozenset(self.decode(entry) for entry in node["__frozenset__"])
            if "__bytearray__" in node:
                return bytearray(node["__bytearray__"])
            if "__ndarray__" in node:
                spec = node["__ndarray__"]
                if not isinstance(spec, dict) or "dtype" not in spec or "shape" not in spec:
                    raise SerializationError("malformed __ndarray__ node")
                if spec["dtype"] == "object":
                    if "items" not in spec or not isinstance(spec["items"], list):
                        raise SerializationError("malformed object-dtype __ndarray__ node")
                    array = np.empty(len(spec["items"]), dtype=object)
                    for index, entry in enumerate(spec["items"]):
                        array[index] = self.decode(entry)
                    return array.reshape(spec["shape"])
                if "data" not in spec or not isinstance(spec["data"], bytes):
                    raise SerializationError("__ndarray__ node is missing its buffer")
                return np.frombuffer(
                    spec["data"], dtype=np.dtype(spec["dtype"])
                ).reshape(spec["shape"]).copy()
            if "__npscalar__" in node:
                return np.frombuffer(
                    node["data"], dtype=np.dtype(node["__npscalar__"])
                )[0]
            if "__ref__" in node:
                try:
                    return self._memo[node["__ref__"]]
                except KeyError:
                    raise SerializationError(
                        "dangling shared-object reference %r" % node["__ref__"]
                    ) from None
            if "__random__" in node:
                # Not an entropy draw: the fresh generator's state is
                # overwritten by the recorded state on the next line.
                rng = random.Random()  # lint: allow[det-unseeded-rng] state is setstate()d from the payload below
                self._memo[node["__random__"]] = rng
                state = self.decode(node["__state__"])
                # getstate() round-trips through list encoding; setstate
                # needs the exact (version, tuple, gauss_next) shape back.
                rng.setstate(
                    (state[0], tuple(state[1]), state[2])
                    if isinstance(state, (list, tuple))
                    else state
                )
                return rng
            if "__object__" in node:
                if not isinstance(node.get("__object__"), str):
                    raise SerializationError("malformed __object__ node")
                if "__id__" not in node or not isinstance(node.get("__state__"), dict):
                    raise SerializationError("object node is missing __id__/__state__")
                klass = _resolve_class(node["__object__"])
                instance = klass.__new__(klass)
                self._memo[node["__id__"]] = instance
                self._apply_state(instance, node["__state__"])
                return instance
            raise SerializationError("unrecognised snapshot node %r" % sorted(node))
        raise SerializationError("unrecognised snapshot value %r" % type(node).__name__)

    def _apply_state(self, instance: Any, state: Dict[str, Any]) -> None:
        for name, entry in state.items():
            object.__setattr__(instance, name, self.decode(entry))

    def rebuild_into(self, instance: Any, node: Dict[str, Any]) -> None:
        """Restore a top-level object node into an existing instance."""
        recorded = node.get("__object__")
        klass = type(instance)
        expected = "%s:%s" % (klass.__module__, klass.__qualname__)
        if recorded != expected:
            raise SerializationError(
                "state_dict was captured from %r, cannot load into %r"
                % (recorded, expected)
            )
        self._memo[node["__id__"]] = instance
        # Drop attributes not present in the snapshot (e.g. lazy caches),
        # so the restored instance is field-for-field the captured one.
        if hasattr(instance, "__dict__"):
            for stale in [
                key for key in instance.__dict__ if key not in node["__state__"]
            ]:
                del instance.__dict__[stale]
        self._apply_state(instance, node["__state__"])


def restore(instance: Any, state: Dict[str, Any]) -> None:
    """Load a :func:`snapshot` tree back into ``instance`` (in place).

    ``instance`` must be of the exact class the snapshot was captured
    from (construct it with any valid parameters first); all captured
    fields — including nested components and shared sub-objects — are
    rebuilt and assigned.
    """
    if not (isinstance(state, dict) and "__object__" in state):
        raise SerializationError("restore() expects a snapshot produced by snapshot()")
    _guarded(_Rebuilder().rebuild_into, instance, state)


def revive(state: Dict[str, Any]) -> Any:
    """Construct a fresh object from a :func:`snapshot` tree."""
    if not (isinstance(state, dict) and "__object__" in state):
        raise SerializationError("revive() expects a snapshot produced by snapshot()")
    return _guarded(_Rebuilder().decode, state)


# ---------------------------------------------------------------------------
# Binary codec: plain tree <-> bytes
# ---------------------------------------------------------------------------

_TAG_NONE = 0x00
_TAG_TRUE = 0x01
_TAG_FALSE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_LIST = 0x07
_TAG_DICT = 0x08


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise SerializationError("varint fields are unsigned")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _encode_tree(out: bytearray, node: Any) -> None:
    if node is None:
        out.append(_TAG_NONE)
    elif node is True:
        out.append(_TAG_TRUE)
    elif node is False:
        out.append(_TAG_FALSE)
    elif isinstance(node, int):
        out.append(_TAG_INT)
        length = (node.bit_length() + 8) // 8 or 1
        raw = node.to_bytes(length, "little", signed=True)
        _write_varint(out, len(raw))
        out.extend(raw)
    elif isinstance(node, float):
        out.append(_TAG_FLOAT)
        out.extend(struct.pack("<d", node))
    elif isinstance(node, str):
        raw = node.encode("utf-8")
        out.append(_TAG_STR)
        _write_varint(out, len(raw))
        out.extend(raw)
    elif isinstance(node, bytes):
        out.append(_TAG_BYTES)
        _write_varint(out, len(node))
        out.extend(node)
    elif isinstance(node, list):
        out.append(_TAG_LIST)
        _write_varint(out, len(node))
        for entry in node:
            _encode_tree(out, entry)
    elif isinstance(node, dict):
        out.append(_TAG_DICT)
        _write_varint(out, len(node))
        # Order-safe: _encode_tree only ever sees snapshotter output, where
        # plain dicts have already been canonicalized into sorted __map__
        # marker nodes; the dicts reaching here are single-marker wrappers
        # and __state__ dicts built in deterministic construction order.
        for key, entry in node.items():  # lint: allow[det-serialize-dict-order] input is canonical snapshotter output
            if not isinstance(key, str):
                raise SerializationError("snapshot tree keys must be strings")
            _encode_tree(out, key)
            _encode_tree(out, entry)
    else:
        raise SerializationError(
            "snapshot tree contains an unencodable %r" % type(node).__name__
        )


class _Reader:
    def __init__(self, data: bytes, offset: int) -> None:
        self._data = data
        self._offset = offset

    def _take(self, count: int) -> bytes:
        end = self._offset + count
        if end > len(self._data):
            raise SerializationError("truncated payload")
        piece = self._data[self._offset : end]
        self._offset = end
        return piece

    def read_varint(self) -> int:
        shift = 0
        value = 0
        while True:
            byte = self._take(1)[0]
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 70:
                raise SerializationError("varint overflow in payload")

    def read_tree(self) -> Any:
        tag = self._take(1)[0]
        if tag == _TAG_NONE:
            return None
        if tag == _TAG_TRUE:
            return True
        if tag == _TAG_FALSE:
            return False
        if tag == _TAG_INT:
            return int.from_bytes(self._take(self.read_varint()), "little", signed=True)
        if tag == _TAG_FLOAT:
            return struct.unpack("<d", self._take(8))[0]
        if tag == _TAG_STR:
            try:
                return self._take(self.read_varint()).decode("utf-8")
            except UnicodeDecodeError as error:
                raise SerializationError("malformed utf-8 string in payload") from error
        if tag == _TAG_BYTES:
            return bytes(self._take(self.read_varint()))
        if tag == _TAG_LIST:
            return [self.read_tree() for _ in range(self._read_count())]
        if tag == _TAG_DICT:
            result: Dict[str, Any] = {}
            for _ in range(self._read_count()):
                key = self.read_tree()
                if not isinstance(key, str):
                    raise SerializationError("snapshot tree keys must be strings")
                result[key] = self.read_tree()
            return result
        raise SerializationError("unknown tag 0x%02x in payload" % tag)

    def _read_count(self) -> int:
        """Read an element count, bounded by the bytes actually left.

        Every encoded element occupies at least one byte, so a count
        exceeding the remaining payload proves corruption immediately —
        without first looping until a truncation error fires.
        """
        count = self.read_varint()
        if count > len(self._data) - self._offset:
            raise SerializationError("element count exceeds remaining payload")
        return count

    def finished(self) -> bool:
        return self._offset == len(self._data)


def dumps(value: Any, state: Optional[Dict[str, Any]] = None) -> bytes:
    """Serialize a library object (or a pre-taken snapshot) to framed bytes."""
    tree = state if state is not None else snapshot(value)
    out = bytearray()
    out.extend(FORMAT_MAGIC)
    out.append(FORMAT_VERSION)
    _encode_tree(out, tree)
    return bytes(out)


def dumps_tree(value: Any) -> bytes:
    """Serialize any supported value tree to framed canonical bytes.

    Unlike :func:`dumps`, the input need not be a library object: plain
    dicts, lists, scalars, and NumPy arrays are accepted directly, with
    the same canonicalisation rules (sorted dict keys, contiguous array
    buffers) the object path uses.  Two structurally equal trees encode
    to byte-identical payloads, which is what fingerprint-style callers
    (e.g. :func:`repro.streams.workloads.workload_fingerprint`) rely on.
    """
    tree = _Snapshotter().encode(value)
    out = bytearray()
    out.extend(FORMAT_MAGIC)
    out.append(FORMAT_VERSION)
    _encode_tree(out, tree)
    return bytes(out)


def decode_frame(data: bytes, require_object: bool = True) -> Any:
    """Validate the framing of ``data`` and return the snapshot tree."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise SerializationError("from_bytes expects a bytes-like payload")
    data = bytes(data)
    if len(data) < len(FORMAT_MAGIC) + 1 or data[: len(FORMAT_MAGIC)] != FORMAT_MAGIC:
        raise SerializationError("payload does not start with the %r frame" % FORMAT_MAGIC)
    version = data[len(FORMAT_MAGIC)]
    if version != FORMAT_VERSION:
        raise SerializationError(
            "unsupported serialization format version %d (expected %d)"
            % (version, FORMAT_VERSION)
        )
    reader = _Reader(data, len(FORMAT_MAGIC) + 1)
    tree = _guarded(reader.read_tree)
    if not reader.finished():
        raise SerializationError("trailing bytes after payload")
    if require_object and not (isinstance(tree, dict) and "__object__" in tree):
        raise SerializationError("payload does not contain an object snapshot")
    return tree


def loads(data: bytes) -> Any:
    """Revive the object serialized by :func:`dumps`."""
    return revive(decode_frame(data))


def loads_tree(data: bytes) -> Any:
    """Decode a value tree serialized by :func:`dumps_tree`.

    The inverse of :func:`dumps_tree`: the top-level value may be any
    supported tree (dict, list, scalar, NumPy array), not necessarily a
    library-object snapshot.  Library objects nested inside the tree are
    revived exactly as :func:`loads` would revive them.
    """
    tree = decode_frame(data, require_object=False)
    return _guarded(_Rebuilder().decode, tree)
