"""The process-wide persistent worker pool behind sharded ingestion.

Every multi-process consumer in the library — the plan executor
(:mod:`repro.parallel.plan`), the analysis runner's segment sharding,
the sweep harness's trial pools, and the network-monitor /
query-optimizer / data-cleaning applications — draws workers from one
lazily created, process-wide :class:`~concurrent.futures
.ProcessPoolExecutor` instead of spawning (and tearing down) a fresh
pool per call.  Pool startup is paid once per process, which is what a
long-running service needs: a daemon answering many small ingest calls
must not fork a pool per request.

Lifecycle rules:

* the pool is created on first use (:func:`get_pool`) and *grows by
  recreation* when a caller asks for more workers than it has;
* it is never shut down implicitly — call :func:`shutdown_pool` for an
  explicit, clean teardown (tests do; services may at exit);
* it is fork-safe: a process created via ``os.fork`` must not reuse its
  parent's pool (the worker pipes are shared), so the singleton is
  dropped in the child (``os.register_at_fork`` plus a PID check) and
  recreated lazily on first use there;
* a pool broken by a dying worker (e.g. a SIGKILL'd shard) is replaced
  on the next :func:`reset_pool` / :func:`get_pool` round — the plan
  executor uses exactly this to retry only the failed shards.

The module also hosts the *shared-payload staging* helpers: a caller
that fans many small tasks over the persistent pool but needs one large
object shipped to every worker (a sweep's replay stream, the
data-cleaning column table) stages it once on disk
(:func:`stage_shared`) and sends only the token per task; workers load
and memoize it per process (:func:`load_shared`).  This replaces the
pool-initializer idiom, which cannot be used with an already-running
shared pool.
"""

from __future__ import annotations

import atexit
import os

# Staged payloads never leave this interpreter's trust boundary: they are
# written and read by the same coordinator/fork-pool process family within
# one run, never persisted or exchanged, so the wire-format rules for
# repro.serialize do not apply.
import pickle  # lint: allow[ser-pickle-import] same-interpreter worker staging, not wire/persistent state
import tempfile
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, Optional

from ..exceptions import ParameterError

__all__ = [
    "default_workers",
    "get_pool",
    "reset_pool",
    "shutdown_pool",
    "pool_stats",
    "stage_shared",
    "load_shared",
    "discard_shared",
]


def default_workers() -> int:
    """Return the default worker count: the CPUs this process may use.

    CPU *affinity* (``os.sched_getaffinity``), not the machine's raw CPU
    count: in a cgroup-limited CI container the process is typically
    pinned to a few cores of a many-core host, and sizing the pool by
    ``os.cpu_count()`` would oversubscribe it.  Falls back to
    ``os.cpu_count()`` where affinity is not exposed (macOS, Windows).
    """
    try:
        affinity = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux hosts
        affinity = os.cpu_count() or 1
    return max(affinity, 1)


_LOCK = threading.Lock()
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_SIZE = 0
_POOL_PID: Optional[int] = None
_POOLS_CREATED = 0  # lifetime creation count, observable via pool_stats()
_POOL_RESTARTS = 0  # live pools replaced/discarded (recovery + growth), ditto


def _drop_pool_reference() -> None:
    """Forget the singleton without shutting it down (fork child path)."""
    global _POOL, _POOL_SIZE, _POOL_PID
    _POOL = None
    _POOL_SIZE = 0
    _POOL_PID = None


if hasattr(os, "register_at_fork"):  # pragma: no branch - CPython on POSIX
    # A fork child must never touch the parent's worker pipes; drop the
    # reference so the child lazily builds its own pool on first use.
    os.register_at_fork(after_in_child=_drop_pool_reference)


def get_pool(workers: Optional[int] = None) -> ProcessPoolExecutor:
    """Return the shared persistent pool, creating or growing it as needed.

    Args:
        workers: the minimum worker count the caller needs.  ``None``
            asks for :func:`default_workers`.  A pool smaller than the
            request is replaced by a bigger one (the old workers are
            released without waiting); a bigger pool is simply reused —
            submitting fewer shards than workers is always safe.

    Returns:
        The live executor.  Callers must *not* shut it down; use
        :func:`shutdown_pool` for explicit teardown.
    """
    global _POOL, _POOL_SIZE, _POOL_PID, _POOLS_CREATED, _POOL_RESTARTS
    want = default_workers() if workers is None else int(workers)
    if want <= 0:
        raise ParameterError("workers must be positive")
    with _LOCK:
        if _POOL is not None and _POOL_PID != os.getpid():
            # Forked child that missed the at-fork hook (or an exotic
            # clone): the parent's pool is not ours to use or to join.
            _drop_pool_reference()
        if _POOL is None or _POOL_SIZE < want:
            old = _POOL
            _POOL = ProcessPoolExecutor(max_workers=max(want, _POOL_SIZE))
            _POOL_SIZE = max(want, _POOL_SIZE)
            _POOL_PID = os.getpid()
            _POOLS_CREATED += 1
            if old is not None:
                _POOL_RESTARTS += 1
                old.shutdown(wait=False, cancel_futures=True)
        return _POOL


def reset_pool() -> None:
    """Discard the current pool (if any) so the next use builds a fresh one.

    The recovery path for a broken pool: when a worker process dies, the
    executor marks itself broken and every submit raises; the plan
    executor calls this, then resubmits only the shards that had not
    completed.  Also usable after heavy one-off work to release workers.
    """
    global _POOL, _POOL_RESTARTS
    with _LOCK:
        pool, pid = _POOL, _POOL_PID
        _drop_pool_reference()
        if pool is not None and pid == os.getpid():
            _POOL_RESTARTS += 1
    if pool is not None and pid == os.getpid():
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pool(wait: bool = True) -> None:
    """Shut the persistent pool down explicitly and forget it.

    Args:
        wait: block until the workers have exited (the default; pass
            ``False`` for fire-and-forget teardown).
    """
    global _POOL
    with _LOCK:
        pool, pid = _POOL, _POOL_PID
        _drop_pool_reference()
    if pool is not None and pid == os.getpid():
        pool.shutdown(wait=wait, cancel_futures=True)


def pool_stats() -> Dict[str, Any]:
    """Return observability counters for the persistent pool.

    ``alive`` — whether a pool currently exists; ``size`` — its worker
    count; ``created`` — how many pools this process has built over its
    lifetime (warm reuse keeps this flat; tests and the warm-vs-cold
    benchmark read it to prove calls share one pool); ``restarts`` — how
    many *live* pools were discarded and replaced (broken-pool recovery
    via :func:`reset_pool`, or growth past the current size), which the
    durability/recovery tests assert on to prove a SIGKILL'd worker cost
    exactly one pool rebuild.
    """
    with _LOCK:
        return {
            "alive": _POOL is not None,
            "size": _POOL_SIZE,
            "created": _POOLS_CREATED,
            "restarts": _POOL_RESTARTS,
        }


@atexit.register
def _shutdown_at_exit() -> None:  # pragma: no cover - interpreter teardown
    """Release the persistent pool's workers at interpreter shutdown.

    Without this, a process that used the pool but never called
    :func:`shutdown_pool` leaks its worker processes into the
    ``concurrent.futures`` exit machinery with tasks still queued.
    Registered after ``concurrent.futures`` is imported, so (atexit
    being LIFO) it runs *before* that module's own exit hook joins the
    worker threads.
    """
    shutdown_pool(wait=False)


# ---------------------------------------------------------------------------
# Shared-payload staging (initializer replacement for the persistent pool).
# ---------------------------------------------------------------------------

#: Worker-side cache of loaded shared payloads, keyed by token.  Tokens are
#: unique temp-file paths, so entries can never go stale; the cache is
#: bounded to keep a worker that serves many sweeps from accumulating
#: every stream it ever saw.
_SHARED_CACHE: Dict[str, Any] = {}
_SHARED_CACHE_LIMIT = 4


def stage_shared(payload: Any) -> str:
    """Write a payload to disk once and return its worker-loadable token.

    The coordinator half of shipping one large object to every pool
    worker without a pool initializer: pickle the object to a unique
    temporary file, pass the returned token in each (small) task, and
    :func:`discard_shared` the token when the fan-out is done.  Workers
    resolve the token with :func:`load_shared`, paying the load once per
    process, not once per task.
    """
    handle, path = tempfile.mkstemp(prefix="repro-shared-", suffix=".bin")
    try:
        with os.fdopen(handle, "wb") as stream:
            pickle.dump(payload, stream, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        os.unlink(path)
        raise
    return path


def load_shared(token: str) -> Any:
    """Load (and memoize) a staged payload inside a worker process."""
    cached = _SHARED_CACHE.get(token)
    if cached is not None:
        return cached
    with open(token, "rb") as stream:
        payload = pickle.load(stream)
    while len(_SHARED_CACHE) >= _SHARED_CACHE_LIMIT:
        _SHARED_CACHE.pop(next(iter(_SHARED_CACHE)))
    _SHARED_CACHE[token] = payload
    return payload


def discard_shared(token: str) -> None:
    """Remove a staged payload's file (after every task using it finished)."""
    try:
        os.unlink(token)
    except OSError:
        pass
