"""The declarative ingestion plan and its one execution engine.

Every sharded multi-process ingestion in the library is an
:class:`IngestPlan`: a *shard axis* (how the stream was partitioned), a
*worker state recipe* (what state each worker starts from), and a
*merge discipline* (how shard results land back in the coordinator's
object).  The five public entry points of :mod:`repro.parallel` are thin
plan constructors; :func:`execute_plan` is the single engine that runs
any of them.

==========================  =========  ================  ===============
entry point                 axis       recipe            discipline
==========================  =========  ================  ===============
``parallel_ingest_f0`` /    ``range``  ``clone``         ``merge-reduce``
``parallel_merge_shards``
``parallel_ingest_l0`` /    ``range``  ``cleared-clone``  ``additive``
``parallel_merge_update_shards``
``parallel_ingest_keyed``   ``key``    ``cleared-clone``  ``merge-reduce``
``parallel_ingest_windowed``  ``epoch``  ``template-epochs``  ``adopt-in-order``
``parallel_ingest_windowed_keyed``  ``epoch``  ``template-epochs``  ``adopt-in-order``
==========================  =========  ================  ===============

Because all plans flow through one engine, capabilities land everywhere
at once:

* **Pipelined shard handoff** — shards are submitted individually and
  their serialized states are consumed as they complete
  (``imap_unordered`` style), so the coordinator deserializes and merges
  fast shards while slow shards are still ingesting, instead of idling
  behind one end-of-shard barrier.  Commutative disciplines
  (``merge-reduce`` over idempotent max/OR/union reductions,
  ``additive`` over modular counter sums) fold results in completion
  order — the final state is order-independent, so it stays bit-identical
  to the sequential run.  Order-sensitive disciplines (``adopt-in-order``
  epoch adoption, which must move the ring forward; key-axis
  ``merge-reduce``, whose row-registration order is part of the store's
  serialized form) buffer out-of-order completions and apply each
  contiguous prefix as soon as it is ready.  ``handoff="barrier"``
  restores the legacy collect-all-then-merge dataflow (the benchmark
  compares the two).

* **Per-shard failure recovery** — a worker that raises, or dies
  outright (SIGKILL breaks the whole pool), costs only its own shard:
  the serialized-state transport makes every shard independently
  replayable, so the engine rebuilds the pool if it broke and re-submits
  just the shards that had not delivered a result, up to
  ``retries`` attempts per shard.  Any successful attempt of a shard
  produces the same bytes, so the final state is deterministic no matter
  which attempt succeeded; shards whose results were already collected
  are never re-ingested.  A shard that keeps failing raises
  :class:`~repro.exceptions.WorkerFailureError`.

* **The persistent worker pool** — ``"processes"`` execution draws from
  the process-wide pool (:mod:`repro.parallel.pool`); pool startup is
  paid once per process, not once per call.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import BrokenExecutor, Executor, as_completed
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .. import serialize
from ..estimators.base import CardinalityEstimator, TurnstileEstimator
from ..exceptions import ParameterError, PersistenceError, WorkerFailureError
from ..vectorize import np
from .pool import default_workers, get_pool, reset_pool
from .workers import ShardFault, ingest_shard, _feed_items, _feed_updates

__all__ = [
    "DEFAULT_SHARD_BATCH",
    "DEFAULT_SHARD_RETRIES",
    "IngestPlan",
    "ShardFault",
    "execute_plan",
]

#: Chunk length used when workers drive shards through ``update_batch``.
DEFAULT_SHARD_BATCH = 65536

#: Re-ingestion attempts granted to a failed shard beyond its first try.
DEFAULT_SHARD_RETRIES = 2

_AXES = ("range", "key", "epoch")
_RECIPES = ("clone", "cleared-clone", "template-epochs")
_DISCIPLINES = ("merge-reduce", "additive", "adopt-in-order")
_KINDS = ("items", "updates", "keyed", "epochs")


@dataclass
class IngestPlan:
    """A declarative description of one sharded ingestion.

    Attributes:
        axis: how the stream was partitioned — ``"range"`` (contiguous
            item/update slices), ``"key"`` (every key in exactly one
            shard), or ``"epoch"`` (whole epochs per shard).
        recipe: the worker's starting state — ``"clone"`` (the
            coordinator's current state; sound for idempotent
            reductions), ``"cleared-clone"`` (same randomness, zeroed
            counters; required when merges are additive, and the shape
            of a key-store's ``spawn_empty``), or ``"template-epochs"``
            (each epoch run revives the ring's empty epoch template).
        discipline: how shard results land back — ``"merge-reduce"``
            (idempotent ``merge``/``merge_from``), ``"additive"``
            (counter-wise sums via ``merge``), or ``"adopt-in-order"``
            (epoch states adopted ring-forward).
        kind: the worker payload dialect (``"items"``, ``"updates"``,
            ``"keyed"``, ``"epochs"``) — derived from the axis and the
            stream model by the plan constructors.
        shards: the shard payload bodies (empty shards are filtered by
            the engine).
        batch_size: chunk length for the workers' ``update_batch``
            driving; ``None`` means the per-kind legacy default (scalar
            loop for ``range``, one sweep for ``key``, one batch per
            epoch run for ``epoch``).
        meta: kind-specific extras (for ``"epochs"``: the template kind
            and the turnstile flag).
        retries: re-ingestion attempts granted per failed shard.
        fault: optional fault-injection map ``{shard_index:
            ShardFault}`` for tests and chaos runs.
    """

    axis: str
    recipe: str
    discipline: str
    kind: str
    shards: List[Any]
    batch_size: Optional[int] = DEFAULT_SHARD_BATCH
    meta: Tuple = ()
    retries: int = DEFAULT_SHARD_RETRIES
    fault: Optional[Mapping[int, ShardFault]] = None

    def __post_init__(self) -> None:
        if self.axis not in _AXES:
            raise ParameterError("unknown shard axis %r" % (self.axis,))
        if self.recipe not in _RECIPES:
            raise ParameterError("unknown worker state recipe %r" % (self.recipe,))
        if self.discipline not in _DISCIPLINES:
            raise ParameterError("unknown merge discipline %r" % (self.discipline,))
        if self.kind not in _KINDS:
            raise ParameterError("unknown shard kind %r" % (self.kind,))
        if self.retries < 0:
            raise ParameterError("retries must not be negative")


def _shard_size(kind: str, shard) -> int:
    if kind == "items":
        return len(shard)
    if kind == "epochs":
        return len(shard)  # runs carry at least one update each
    return len(shard[0])  # updates / keyed: aligned arrays


def _supports_merge(estimator) -> bool:
    if isinstance(estimator, TurnstileEstimator):
        return type(estimator).merge is not TurnstileEstimator.merge
    return type(estimator).merge is not CardinalityEstimator.merge


def _require_explicit_seed(estimator) -> None:
    """Refuse seedless sketches up front, before any shard work is spent.

    Plain sketches carry a ``seed`` attribute; amplification wrappers
    carry none but expose their ``copies``, whose seeds determine merge
    compatibility — check whichever is present.
    """
    seedless = getattr(estimator, "seed", 0) is None or any(
        getattr(copy, "seed", 0) is None
        for copy in getattr(estimator, "copies", ())
    )
    if seedless:
        raise ParameterError(
            "sharded ingestion needs an explicit seed so the shard sketches "
            "share hash functions; construct the estimator with seed=..."
        )


def _template_for(plan: IngestPlan, target) -> bytes:
    """Realize the plan's worker state recipe against the target."""
    if plan.recipe == "clone":
        return target.to_bytes()
    if plan.recipe == "cleared-clone":
        if plan.axis == "key":
            return target.spawn_empty().to_bytes()
        # Clear once on the coordinator instead of once per worker: the
        # revived clone keeps the template's hash randomness, and its
        # serialized cleared state is exactly what each worker would have
        # produced by reviving and clearing locally.
        clone = serialize.loads(target.to_bytes())
        clone.clear()
        return clone.to_bytes()
    return target.template_bytes  # "template-epochs"


def _feed_direct(plan: IngestPlan, target, shard) -> None:
    """Degenerate single-shard path: feed the coordinator's object itself.

    No worker state, no serialized transport, no merge — so one
    non-empty shard works even for unmergeable or seedless sketches,
    byte-identical to calling the object's own ingestion API.
    """
    if plan.kind == "items":
        _feed_items(target, shard, plan.batch_size)
    elif plan.kind == "updates":
        _feed_updates(target, shard, plan.batch_size)
    elif plan.kind == "keyed":
        keys, items, deltas = shard
        target.update_grouped(keys, items, deltas)
    else:  # epochs: replay the runs through the ring's own timestamped path
        template_kind = plan.meta[0]
        for run in shard:
            epoch = int(run[0])
            stamped = np.full(len(run[-2]), epoch, dtype=np.int64)
            if template_kind == "store":
                _, keys, items, deltas = run
                target.ingest_timestamped(
                    stamped, keys, items, deltas, batch_size=plan.batch_size
                )
            else:
                _, items, deltas = run
                target.ingest_timestamped(
                    stamped, items, deltas, batch_size=plan.batch_size
                )


def _apply_result(plan: IngestPlan, target, result) -> None:
    """Land one shard's serialized result in the coordinator's object."""
    if plan.discipline == "adopt-in-order":
        target.load_epoch_sketches(
            (epoch, serialize.loads(blob)) for epoch, blob in result
        )
    elif plan.axis == "key":
        target.merge_from(serialize.loads(result))
    else:
        target.merge(serialize.loads(result))


class _ResultSink:
    """Applies shard results under the plan's ordering constraint.

    Commutative disciplines fold results the moment they arrive;
    order-sensitive ones buffer out-of-order completions and flush each
    contiguous prefix of shard indices as soon as it is complete.  A
    ``barrier`` handoff buffers everything and flushes once at the end —
    the legacy dataflow, kept for comparison benchmarks.
    """

    def __init__(self, plan: IngestPlan, target, barrier: bool) -> None:
        self._plan = plan
        self._target = target
        # Key-axis merge_from registers rows in arrival order (part of
        # the store's serialized form), and epoch adoption only moves
        # the ring forward — both need plan-order application.
        self._ordered = barrier or plan.discipline == "adopt-in-order" or (
            plan.axis == "key"
        )
        self._barrier = barrier
        self._buffer: Dict[int, Any] = {}
        self._next = 0

    def add(self, index: int, result) -> None:
        if not self._ordered:
            _apply_result(self._plan, self._target, result)
            return
        self._buffer[index] = result
        if not self._barrier:
            self._flush_ready()

    def _flush_ready(self) -> None:
        while self._next in self._buffer:
            _apply_result(self._plan, self._target, self._buffer.pop(self._next))
            self._next += 1

    def finish(self) -> None:
        self._flush_ready()
        assert not self._buffer, "shard results left unapplied"


class _ResultSpool:
    """Durable per-shard result spool: crash insurance for the coordinator.

    Each delivered shard result is appended (fsync'd) to a
    :class:`~repro.durability.DurableLog` in ``directory`` *before* it is
    merged, so a coordinator that dies mid-plan can re-run the same plan
    with the same ``spool_dir`` and re-ingest only the shards that never
    delivered.  The spool opens with a fingerprint record binding it to
    the plan (kind, axes, shard count, worker template bytes); resuming
    with a different plan fails fast rather than merging foreign results.
    The spool is destroyed on successful completion — finished state must
    not be mistaken for something resumable.
    """

    _KIND_META = 0x03  # RECORD_KIND_META
    _KIND_RESULT = 0x02  # RECORD_KIND_DELTA

    def __init__(self, directory: str, plan: IngestPlan, template: bytes) -> None:
        from ..durability.log import DurableLog, scan_segment

        fingerprint = hashlib.sha256(
            serialize.dumps_tree(
                {
                    "axis": plan.axis,
                    "recipe": plan.recipe,
                    "discipline": plan.discipline,
                    "kind": plan.kind,
                    "shards": len(plan.shards),
                    "batch_size": plan.batch_size,
                    "meta": list(plan.meta),
                    "template": template,
                }
            )
        ).hexdigest()
        self._log = DurableLog(directory)
        self.recovered: Dict[int, Any] = {}
        self._seq = 0
        segments = self._log.segment_paths()
        if segments:
            first_scan = scan_segment(segments[0][1])
            head = first_scan.records[0] if first_scan.records else None
            if (
                head is None
                or head.kind != self._KIND_META
                or serialize.loads_tree(head.payload).get("fingerprint") != fingerprint
            ):
                self._log.close()
                raise PersistenceError(
                    "result spool %r does not match this plan (different "
                    "plan shape, shard count, or worker template); clear "
                    "the directory or use a fresh spool_dir" % directory
                )
            for _, path in segments:
                scan = scan_segment(path)
                for record in scan.records:
                    self._seq = max(self._seq, record.seq)
                    if record.kind != self._KIND_RESULT:
                        continue
                    tree = serialize.loads_tree(record.payload)
                    self.recovered[int(tree["index"])] = tree["result"]
            # Never append after unverified bytes: resume in a new segment.
            self._log.open_segment(self._seq + 1)
        else:
            self._log.open_segment(1)
            self._seq = 1
            self._log.append(
                self._KIND_META,
                self._seq,
                serialize.dumps_tree({"fingerprint": fingerprint}),
            )

    def record(self, index: int, result) -> None:
        self._seq += 1
        self._log.append(
            self._KIND_RESULT,
            self._seq,
            serialize.dumps_tree({"index": index, "result": result}),
        )

    def close(self) -> None:
        self._log.close()

    def destroy(self) -> None:
        self._log.destroy()


def _payload(plan: IngestPlan, template: bytes, shard, index: int,
             attempt: int, inline: bool) -> Tuple:
    spec = None if plan.fault is None else plan.fault.get(index)
    fault = spec.mode if spec is not None and attempt < spec.failures else None
    return (plan.kind, template, shard, plan.batch_size, plan.meta, fault, inline)


def _run_inline(
    plan: IngestPlan,
    target,
    work: List[Any],
    template: bytes,
    spool: Optional[_ResultSpool] = None,
) -> None:
    sink = _ResultSink(plan, target, barrier=False)
    done = {} if spool is None else spool.recovered
    for index in sorted(done):
        sink.add(index, done[index])
    for index, shard in enumerate(work):
        if index in done:
            continue
        attempt = 0
        while True:
            try:
                result = ingest_shard(
                    _payload(plan, template, shard, index, attempt, True)
                )
                break
            except Exception as error:
                attempt += 1
                if attempt > plan.retries:
                    raise WorkerFailureError(
                        "shard %d failed %d time(s), exhausting its retry "
                        "budget of %d" % (index, attempt, plan.retries)
                    ) from error
        if spool is not None:
            spool.record(index, result)
        sink.add(index, result)
    sink.finish()


def _run_pooled(
    plan: IngestPlan,
    target,
    work: List[Any],
    template: bytes,
    executor: Executor,
    barrier: bool,
    owns_pool: bool,
    workers: Optional[int],
    spool: Optional[_ResultSpool] = None,
) -> None:
    """Fan shards out with pipelined (or barrier) handoff and shard retry."""
    sink = _ResultSink(plan, target, barrier=barrier)
    done = {} if spool is None else spool.recovered
    for index in sorted(done):
        sink.add(index, done[index])
    attempts = [0] * len(work)
    pending = [index for index in range(len(work)) if index not in done]
    last_error: Optional[BaseException] = None
    while pending:
        futures = {}
        failed: List[int] = []
        broken = False
        for index in pending:
            if broken:
                failed.append(index)
                continue
            payload = _payload(plan, template, work[index], index,
                               attempts[index], False)
            try:
                futures[executor.submit(ingest_shard, payload)] = index
            except Exception as error:  # a pool already broken by a prior round
                last_error = error
                broken = True
                attempts[index] += 1
                failed.append(index)
        for future in as_completed(futures):
            index = futures[future]
            try:
                result = future.result()
            except Exception as error:
                # A worker raise fails one future; a worker death breaks
                # the pool and fails every uncollected future.  Either
                # way only the shards without a delivered result are
                # charged and retried — collected results are kept.
                last_error = error
                attempts[index] += 1
                failed.append(index)
                if isinstance(error, BrokenExecutor):
                    broken = True
                continue
            if spool is not None:
                spool.record(index, result)
            sink.add(index, result)
        exhausted = [index for index in failed if attempts[index] > plan.retries]
        if exhausted:
            raise WorkerFailureError(
                "shard(s) %s exhausted their retry budget of %d"
                % (exhausted, plan.retries)
            ) from last_error
        if failed and broken:
            if not owns_pool:
                raise WorkerFailureError(
                    "the caller-supplied executor broke; shard retry needs "
                    "the engine-owned persistent pool"
                ) from last_error
            reset_pool()
            executor = get_pool(workers)
        pending = sorted(failed)
    sink.finish()


def execute_plan(
    plan: IngestPlan,
    target,
    workers: Optional[int] = None,
    execution: Optional[str] = None,
    executor: Optional[Executor] = None,
    handoff: Optional[str] = None,
    spool_dir: Optional[str] = None,
):
    """Execute an ingestion plan against ``target`` (mutated in place).

    Args:
        plan: the declarative plan (see :class:`IngestPlan`).
        target: the coordinator's object — an estimator, a
            :class:`~repro.store.store.SketchStore`, or a windowed ring —
            matching the plan's axis/discipline.
        workers: process count for the ``"processes"`` mode; defaults to
            :func:`~repro.parallel.pool.default_workers`, capped at the
            number of non-empty shards.
        execution: ``"processes"``, ``"inline"``, or ``None`` to pick
            ``"processes"`` exactly when more than one worker can do
            useful work.  Inline execution runs the identical shard /
            serialize / revive / merge dataflow in-process — results are
            byte-for-byte the same.
        executor: an existing :class:`concurrent.futures.Executor` to
            submit shard work to instead of the engine's persistent pool.
            The caller keeps ownership (it is not shut down or replaced
            here) and ``workers``/``execution`` are ignored when given.
        handoff: ``"pipelined"`` (default — merge shard states as they
            complete) or ``"barrier"`` (legacy collect-all-then-merge).
        spool_dir: optional directory for a durable per-shard result
            spool.  Every delivered shard result is fsync'd there before
            being merged; re-running the same plan with the same
            ``spool_dir`` after a coordinator crash submits only the
            shards that never delivered, merging the spooled results for
            the rest (bit-identical to an uninterrupted run).  The spool
            is deleted when the plan completes.  Requires a mergeable
            target even for single-shard plans (the direct-feed shortcut
            would bypass the spooled transport).

    Returns:
        ``target``, for chaining.
    """
    if handoff is None:
        handoff = "pipelined"
    if handoff not in ("pipelined", "barrier"):
        raise ParameterError("handoff must be 'pipelined' or 'barrier'")
    work = [shard for shard in plan.shards if _shard_size(plan.kind, shard) > 0]
    if not work:
        return target
    if len(work) == 1 and plan.fault is None and spool_dir is None:
        _feed_direct(plan, target, work[0])
        return target
    if plan.axis == "range":
        if not _supports_merge(target):
            raise ParameterError(
                "%s does not support merge; sharded ingestion needs a "
                "mergeable sketch" % type(target).__name__
            )
        _require_explicit_seed(target)

    template = _template_for(plan, target)
    spool = None if spool_dir is None else _ResultSpool(spool_dir, plan, template)
    try:
        if executor is not None:
            _run_pooled(plan, target, work, template, executor,
                        handoff == "barrier", owns_pool=False, workers=None,
                        spool=spool)
        else:
            if workers is None:
                workers = default_workers()
            if workers <= 0:
                raise ParameterError("workers must be positive")
            workers = min(workers, len(work))
            if execution is None:
                execution = "processes" if workers > 1 else "inline"
            if execution not in ("processes", "inline"):
                raise ParameterError("execution must be 'processes' or 'inline'")
            if execution == "inline":
                _run_inline(plan, target, work, template, spool=spool)
            else:
                pool = get_pool(workers)
                _run_pooled(plan, target, work, template, pool,
                            handoff == "barrier", owns_pool=True,
                            workers=workers, spool=spool)
    except BaseException:
        if spool is not None:
            spool.close()  # keep the delivered results for the re-run
        raise
    if spool is not None:
        spool.destroy()
    return target
