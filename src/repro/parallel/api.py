"""Public sharded-ingestion entry points, as thin plan constructors.

Every function here builds an :class:`~repro.parallel.plan.IngestPlan`
(shard axis × worker state recipe × merge discipline) and hands it to
:func:`~repro.parallel.plan.execute_plan` — there are no per-path
shard/worker/merge loops left; the engine owns sharded execution,
pipelined handoff, shard retry, and the persistent pool for all five
pipelines at once.

Correctness contract (unchanged from the hand-rolled predecessors).  For
every estimator that supports :meth:`merge
<repro.estimators.base.CardinalityEstimator.merge>`, shard-and-merge is
*estimate-equivalent* to sequential ingestion; for estimators whose hash
functions are fully seed-determined (``shard_deterministic`` on the
estimator — everything except the lazily materialised Lemma 5 uniform
family configurations) it is **bit-identical**: the merged sketch's
state and estimate equal those of a single sketch fed the concatenated
stream, for any shard count, any execution mode, and any handoff
discipline.  The per-counter reductions are maxima, ORs, set unions, and
modular counter sums — commutative and associative — which also makes
the engine safe to use *mid-stream*: idempotent families clone the
coordinator's state into every worker (re-merging it is a no-op), while
additive families give the workers *cleared* clones so the prior state
enters the sum exactly once.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor
from typing import Dict, List, Optional, Sequence

from ..estimators.base import CardinalityEstimator, TurnstileEstimator
from ..estimators.registry import (
    f0_algorithm_names,
    l0_algorithm_names,
    make_f0_estimator,
    make_l0_estimator,
)
from ..exceptions import ParameterError, UpdateError
from ..streams.model import MaterializedStream
from .plan import DEFAULT_SHARD_BATCH, IngestPlan, _supports_merge, execute_plan
from .pool import default_workers
from .shards import (
    ItemSource,
    UpdateShard,
    _as_update_arrays,
    shard_epoch_slices,
    shard_items,
    shard_keyed_updates,
    shard_updates,
)

__all__ = [
    "parallel_merge_shards",
    "parallel_merge_update_shards",
    "parallel_ingest_into",
    "parallel_ingest_updates_into",
    "parallel_ingest_f0",
    "parallel_ingest_l0",
    "parallel_ingest_keyed",
    "parallel_ingest_windowed",
    "parallel_ingest_windowed_keyed",
    "mergeable_f0_names",
    "mergeable_l0_names",
]


def parallel_merge_shards(
    estimator: CardinalityEstimator,
    shards: Sequence,
    workers: Optional[int] = None,
    batch_size: Optional[int] = DEFAULT_SHARD_BATCH,
    execution: Optional[str] = None,
    executor: Optional[Executor] = None,
    handoff: Optional[str] = None,
) -> CardinalityEstimator:
    """Ingest caller-partitioned shards into ``estimator`` via merge-reduce.

    The ``(range, clone, merge-reduce)`` plan: each shard (an integer
    array — e.g. one network link's traffic, one table partition's
    column values) is ingested by a worker into a clone of
    ``estimator``'s current state, and the resulting sketches merge back
    as they complete.

    Args:
        estimator: the target sketch.  Must support merging (and so must
            have been built with an explicit seed) unless there are zero
            or one non-empty shards, in which case the engine feeds it
            directly.
        shards: the partition, as produced by :func:`shard_items` or by
            the caller's own sharding (per-link, per-partition, ...).
        workers: process count for the ``"processes"`` mode; defaults to
            :func:`~repro.parallel.pool.default_workers`, capped at the
            number of non-empty shards.
        batch_size: chunk length for the workers' ``update_batch``
            driving; ``None`` forces the scalar per-item loop (the
            shard/merge result is identical either way, by the batch
            equivalence contract).
        execution: ``"processes"``, ``"inline"``, or ``None`` to pick
            ``"processes"`` exactly when more than one worker can do
            useful work.
        executor: an existing :class:`concurrent.futures.Executor` to
            submit shard work to instead of the engine-owned persistent
            pool.  The caller keeps ownership (it is not shut down here)
            and ``workers``/``execution`` are ignored when it is given.
        handoff: ``"pipelined"`` (default) or ``"barrier"`` — see
            :func:`~repro.parallel.plan.execute_plan`.

    Returns:
        ``estimator`` (mutated in place), for chaining.
    """
    plan = IngestPlan(
        axis="range",
        recipe="clone",
        discipline="merge-reduce",
        kind="items",
        shards=list(shards),
        batch_size=batch_size,
    )
    return execute_plan(
        plan, estimator, workers=workers, execution=execution,
        executor=executor, handoff=handoff,
    )


def parallel_ingest_into(
    estimator: CardinalityEstimator,
    items: ItemSource,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    batch_size: Optional[int] = DEFAULT_SHARD_BATCH,
    execution: Optional[str] = None,
    executor: Optional[Executor] = None,
    handoff: Optional[str] = None,
) -> CardinalityEstimator:
    """Shard ``items`` and ingest them into ``estimator`` (see above).

    Equivalent to ``parallel_merge_shards(estimator, shard_items(items,
    shards or workers), ...)``; the one-shard case degenerates to a
    plain batched feed, so ``workers=1`` has no multiprocessing
    overhead and is byte-identical to calling ``update_batch`` yourself.
    """
    if workers is None and shards is None:
        workers = default_workers()
    count = shards if shards is not None else workers
    return parallel_merge_shards(
        estimator,
        shard_items(items, count),
        workers=workers,
        batch_size=batch_size,
        execution=execution,
        executor=executor,
        handoff=handoff,
    )


def parallel_ingest_f0(
    algorithm: str,
    stream: ItemSource,
    eps: float,
    seed: int,
    universe_size: Optional[int] = None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    batch_size: Optional[int] = DEFAULT_SHARD_BATCH,
    execution: Optional[str] = None,
) -> CardinalityEstimator:
    """Build a registered F0 estimator and ingest a stream sharded.

    Args:
        algorithm: registry name (see :func:`repro.estimators.registry
            .f0_algorithm_names`).
        stream: a materialized insertion-only stream, or raw identifiers
            (then ``universe_size`` is required).
        eps: target relative error.
        seed: estimator seed; must be explicit — the shard sketches
            derive identical hash functions from it.
        universe_size: universe bound when ``stream`` is a raw sequence.
        workers / shards / batch_size / execution: as in
            :func:`parallel_ingest_into`.

    Returns:
        The merged estimator (call ``estimate()`` on it).
    """
    if seed is None:
        raise ParameterError("parallel_ingest_f0 requires an explicit seed")
    if isinstance(stream, MaterializedStream):
        universe_size = stream.universe_size
    elif universe_size is None:
        raise ParameterError("universe_size is required for raw item sequences")
    estimator = make_f0_estimator(algorithm, universe_size, eps, seed)
    return parallel_ingest_into(
        estimator,
        stream,
        workers=workers,
        shards=shards,
        batch_size=batch_size,
        execution=execution,
    )


def parallel_merge_update_shards(
    estimator: TurnstileEstimator,
    shards: Sequence[UpdateShard],
    workers: Optional[int] = None,
    batch_size: Optional[int] = DEFAULT_SHARD_BATCH,
    execution: Optional[str] = None,
    executor: Optional[Executor] = None,
    handoff: Optional[str] = None,
) -> TurnstileEstimator:
    """Ingest caller-partitioned turnstile shards via additive merges.

    The ``(range, cleared-clone, additive)`` plan — same contract and
    execution modes as :func:`parallel_merge_shards`, for signed update
    shards: each ``(items, deltas)`` shard is ingested by a worker into
    an *empty* same-randomness clone of ``estimator`` (turnstile merges
    are additive, so — unlike the idempotent F0 reductions — the
    coordinator's existing state must enter the sum exactly once)
    through the vectorized turnstile ``update_batch`` pipeline.  For
    every library L0 sketch the result is bit-identical to sequential
    ingestion (linear sketches, eagerly drawn hashes — see
    ``TurnstileEstimator.shard_deterministic``), including mid-stream
    take-over of an already-started coordinator sketch.
    """
    plan = IngestPlan(
        axis="range",
        recipe="cleared-clone",
        discipline="additive",
        kind="updates",
        shards=list(shards),
        batch_size=batch_size,
    )
    return execute_plan(
        plan, estimator, workers=workers, execution=execution,
        executor=executor, handoff=handoff,
    )


def parallel_ingest_updates_into(
    estimator: TurnstileEstimator,
    source,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    batch_size: Optional[int] = DEFAULT_SHARD_BATCH,
    execution: Optional[str] = None,
    executor: Optional[Executor] = None,
    handoff: Optional[str] = None,
) -> TurnstileEstimator:
    """Shard a turnstile stream and ingest it into ``estimator``.

    The L0 counterpart of :func:`parallel_ingest_into`: equivalent to
    ``parallel_merge_update_shards(estimator, shard_updates(source,
    shards or workers), ...)``, with the one-shard case degenerating to a
    plain batched feed.
    """
    if workers is None and shards is None:
        workers = default_workers()
    count = shards if shards is not None else workers
    return parallel_merge_update_shards(
        estimator,
        shard_updates(source, count),
        workers=workers,
        batch_size=batch_size,
        execution=execution,
        executor=executor,
        handoff=handoff,
    )


def parallel_ingest_l0(
    algorithm: str,
    source,
    eps: float,
    seed: int,
    universe_size: Optional[int] = None,
    magnitude_bound: Optional[int] = None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    batch_size: Optional[int] = DEFAULT_SHARD_BATCH,
    execution: Optional[str] = None,
) -> TurnstileEstimator:
    """Build a registered L0 estimator and ingest a turnstile stream sharded.

    Args:
        algorithm: registry name (see :func:`repro.estimators.registry
            .l0_algorithm_names`).
        source: a materialized turnstile stream, or an ``(items, deltas)``
            pair (then ``universe_size`` is required).
        eps: target relative error.
        seed: estimator seed; must be explicit so shard sketches share
            hash functions.
        universe_size: universe bound when ``source`` is a raw pair.
        magnitude_bound: upper bound on ``mM``; derived from the stream
            (``len * max|delta|``) when omitted, as in the analysis runner.
        workers / shards / batch_size / execution: as in
            :func:`parallel_ingest_into`.
    """
    if seed is None:
        raise ParameterError("parallel_ingest_l0 requires an explicit seed")
    if isinstance(source, MaterializedStream):
        universe_size = source.universe_size
        if magnitude_bound is None:
            magnitude_bound = max(len(source) * source.max_update_magnitude(), 1)
    elif universe_size is None:
        raise ParameterError("universe_size is required for raw update pairs")
    if magnitude_bound is None:
        items, deltas = _as_update_arrays(source)
        peak = max((abs(int(delta)) for delta in deltas), default=1)
        magnitude_bound = max(len(items) * peak, 1)
    estimator = make_l0_estimator(algorithm, universe_size, eps, magnitude_bound, seed)
    return parallel_ingest_updates_into(
        estimator,
        source,
        workers=workers,
        shards=shards,
        batch_size=batch_size,
        execution=execution,
    )


def parallel_ingest_keyed(
    store,
    keys,
    items,
    deltas=None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    batch_size: Optional[int] = DEFAULT_SHARD_BATCH,
    execution: Optional[str] = None,
    executor: Optional[Executor] = None,
    handoff: Optional[str] = None,
):
    """Shard a keyed batch by key range and ingest it into ``store``.

    The ``(key, cleared-clone, merge-reduce)`` plan — the
    :class:`~repro.store.store.SketchStore` counterpart of
    :func:`parallel_ingest_into`: the batch is partitioned with
    :func:`shard_keyed_updates`, each worker process ingests its key
    range into an *empty* clone of the store (same family, parameters,
    and seed — :meth:`~repro.store.store.SketchStore.spawn_empty`), and
    the worker stores merge back key-wise in shard order.  Every key's
    updates stay in one shard, so the merged store is exactly the store
    sequential grouped ingestion would produce — for idempotent (max/OR)
    families *and* additive turnstile families.

    Args:
        store: the target sketch store (mutated in place).
        keys / items / deltas: the keyed batch, as accepted by
            :meth:`~repro.store.store.SketchStore.update_grouped`
            (integer keys — the shard assignment sorts them).
        workers: process count; defaults to
            :func:`~repro.parallel.pool.default_workers`.
        shards: shard count; defaults to ``workers``.
        batch_size: chunk length for the workers' grouped driving.
        execution: ``"processes"``, ``"inline"``, or ``None`` to pick
            automatically.
        executor: an existing pool to reuse (``workers``/``execution``
            are then ignored).
        handoff: ``"pipelined"`` (default) or ``"barrier"``.

    Returns:
        ``store``, for chaining.
    """
    if workers is None and shards is None:
        workers = default_workers()
    count = shards if shards is not None else workers
    plan = IngestPlan(
        axis="key",
        recipe="cleared-clone",
        discipline="merge-reduce",
        kind="keyed",
        shards=shard_keyed_updates(keys, items, deltas, shards=count),
        batch_size=batch_size,
    )
    return execute_plan(
        plan, store, workers=workers, execution=execution,
        executor=executor, handoff=handoff,
    )


def _epoch_shards(epochs, items, deltas, keys, workers, shards):
    """Cut a timestamped stream into epoch-run shard payloads.

    Returns one run-list per non-empty epoch-range span; each run is
    ``(epoch, items, deltas)`` — or ``(epoch, keys, items, deltas)``
    when ``keys`` is given — over NumPy views of the caller's arrays.
    """
    from ..window.windowed import epoch_runs

    if workers is None and shards is None:
        workers = default_workers()
    count = shards if shards is not None else workers
    spans = [
        span for span in shard_epoch_slices(epochs, count) if span[1] > span[0]
    ]
    shard_payloads = []
    for start, stop in spans:
        runs = []
        for epoch, run_start, run_stop in epoch_runs(epochs[start:stop]):
            lo, hi = start + run_start, start + run_stop
            sliced_deltas = None if deltas is None else deltas[lo:hi]
            if keys is None:
                runs.append((epoch, items[lo:hi], sliced_deltas))
            else:
                runs.append((epoch, keys[lo:hi], items[lo:hi], sliced_deltas))
        shard_payloads.append(runs)
    return shard_payloads


def parallel_ingest_windowed(
    window,
    epochs,
    items,
    deltas=None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    batch_size: Optional[int] = None,
    execution: Optional[str] = None,
    executor: Optional[Executor] = None,
    handoff: Optional[str] = None,
):
    """Shard a timestamped stream by epoch range and ingest it into ``window``.

    The ``(epoch, template-epochs, adopt-in-order)`` plan: equivalent to
    ``window.ingest_timestamped(epochs, items, deltas,
    batch_size=batch_size)`` — including bit-identical epoch states,
    since every epoch is built wholly inside one shard from the ring's
    empty epoch template and adopted back in epoch order
    (:meth:`~repro.window.windowed._EpochRing.load_epoch_sketches`) —
    with the epoch construction fanned out over worker processes.

    Args:
        window: the target :class:`~repro.window.windowed.WindowedSketch`
            (mutated in place).
        epochs: one non-decreasing epoch number per update; none may
            precede the window's open epoch.
        items: identifiers, aligned with ``epochs``.
        deltas: signed deltas for turnstile families.
        workers: process count (defaults to
            :func:`~repro.parallel.pool.default_workers`).
        shards: epoch-range count (defaults to ``workers``).
        batch_size: per-epoch ``update_batch`` chunk length (``None`` =
            one batch per epoch run), applied identically by sequential
            and sharded ingestion.
        execution: ``"processes"``, ``"inline"``, or ``None`` to pick
            automatically.
        executor: an existing pool to reuse (``workers``/``execution``
            are then ignored).
        handoff: ``"pipelined"`` (default) or ``"barrier"``.

    Returns:
        ``window``, for chaining.
    """
    from ..window.windowed import WindowedSketch

    if not isinstance(window, WindowedSketch):
        raise ParameterError("parallel_ingest_windowed expects a WindowedSketch")
    if len(epochs) != len(items):
        raise ParameterError("windowed ingestion needs one epoch per update")
    # Mirror ingest_timestamped's model validation up front, so the
    # outcome does not depend on the shard count.
    if window.turnstile:
        if deltas is None:
            raise UpdateError("turnstile windowed ingestion needs deltas")
        if len(deltas) != len(items):
            raise UpdateError("windowed ingestion needs one delta per item")
    elif deltas is not None:
        raise UpdateError("insertion-only windowed ingestion takes no deltas")
    plan = IngestPlan(
        axis="epoch",
        recipe="template-epochs",
        discipline="adopt-in-order",
        kind="epochs",
        shards=_epoch_shards(epochs, items, deltas, None, workers, shards),
        batch_size=batch_size,
        meta=("sketch", window.turnstile),
    )
    return execute_plan(
        plan, window, workers=workers, execution=execution,
        executor=executor, handoff=handoff,
    )


def parallel_ingest_windowed_keyed(
    window,
    epochs,
    keys,
    items,
    deltas=None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    batch_size: Optional[int] = None,
    execution: Optional[str] = None,
    executor: Optional[Executor] = None,
    handoff: Optional[str] = None,
):
    """Shard a timestamped *keyed* stream by epoch range into a windowed store.

    The :class:`~repro.window.windowed.WindowedSketchStore` counterpart
    of :func:`parallel_ingest_windowed` — the same ``(epoch,
    template-epochs, adopt-in-order)`` plan, with each worker building
    whole epoch *stores* from the ring's empty store template via
    grouped vectorized ingestion.  Epochs never span shards, so — as
    with key-range sharding — the result is exact for max/OR families
    and additive turnstile families alike.
    """
    from ..window.windowed import WindowedSketchStore

    if not isinstance(window, WindowedSketchStore):
        raise ParameterError(
            "parallel_ingest_windowed_keyed expects a WindowedSketchStore"
        )
    if len(keys) != len(items):
        raise ParameterError("windowed keyed ingestion needs one key per item")
    if len(epochs) != len(items):
        raise ParameterError("windowed ingestion needs one epoch per update")
    if deltas is not None and len(deltas) != len(items):
        raise ParameterError("windowed keyed ingestion needs one delta per item")
    plan = IngestPlan(
        axis="epoch",
        recipe="template-epochs",
        discipline="adopt-in-order",
        kind="epochs",
        shards=_epoch_shards(epochs, items, deltas, keys, workers, shards),
        batch_size=batch_size,
        meta=("store", window.turnstile),
    )
    return execute_plan(
        plan, window, workers=workers, execution=execution,
        executor=executor, handoff=handoff,
    )


_MERGEABLE_CACHE: Optional[Dict[str, bool]] = None
_DETERMINISTIC_CACHE: Dict[str, bool] = {}


def _drop_capability_caches() -> None:
    """Reset the registry-derived memo caches in forked pool workers.

    The caches are pure functions of the estimator registry, but a child
    should re-derive them against whatever registry *it* sees rather than
    inherit the coordinator's snapshot through fork.
    """
    global _MERGEABLE_CACHE
    _MERGEABLE_CACHE = None
    _DETERMINISTIC_CACHE.clear()


os.register_at_fork(after_in_child=_drop_capability_caches)


def mergeable_f0_names(shard_deterministic_only: bool = False) -> List[str]:
    """Return the registered F0 algorithms usable with sharded ingestion.

    Args:
        shard_deterministic_only: when True, keep only the algorithms
            whose sharded ingest is *bit-identical* to sequential ingest
            (see ``CardinalityEstimator.shard_deterministic``); the
            remainder (currently the default ``knw`` configuration,
            whose Lemma 5 rough-estimator family draws lazily) are
            merge-*compatible* but only approximation-equivalent.
    """
    global _MERGEABLE_CACHE
    if _MERGEABLE_CACHE is None:
        probes = {
            name: make_f0_estimator(name, 1 << 12, 0.25, seed=0)
            for name in f0_algorithm_names()
        }
        _MERGEABLE_CACHE = {
            name: _supports_merge(probe) for name, probe in probes.items()
        }
        _DETERMINISTIC_CACHE.update(
            {
                name: bool(getattr(probe, "shard_deterministic", True))
                for name, probe in probes.items()
            }
        )
    names = [name for name, able in sorted(_MERGEABLE_CACHE.items()) if able]
    if shard_deterministic_only:
        names = [name for name in names if _DETERMINISTIC_CACHE[name]]
    return names


_L0_MERGEABLE_CACHE: Optional[Dict[str, bool]] = None


def mergeable_l0_names() -> List[str]:
    """Return the registered L0 algorithms usable with sharded ingestion.

    Every mergeable L0 sketch in the library is linear with eagerly drawn
    hash functions, so — unlike the F0 side — sharded ingest is always
    *bit-identical* to sequential ingest (no ``shard_deterministic_only``
    filter is needed; see ``TurnstileEstimator.shard_deterministic``).
    """
    global _L0_MERGEABLE_CACHE
    if _L0_MERGEABLE_CACHE is None:
        _L0_MERGEABLE_CACHE = {
            name: _supports_merge(
                make_l0_estimator(name, 1 << 12, 0.25, 1 << 10, seed=0)
            )
            for name in l0_algorithm_names()
        }
    return [name for name, able in sorted(_L0_MERGEABLE_CACHE.items()) if able]
