"""Sharded multi-process ingestion: declarative plans, one executor.

This is the distributed-deployment shape the paper's introduction
motivates (union of streams observed at many points) realised on one
machine.  A stream is partitioned along a *shard axis*, each shard is
ingested by a worker process into a state built from a *worker state
recipe* (through the vectorized ``update_batch`` pipeline), the worker
ships its state back serialized (:mod:`repro.serialize` — no pickle of
live objects), and the coordinator lands the shard states under a
*merge discipline*.  That ``(axis, recipe, discipline)`` triple is an
:class:`IngestPlan`; one engine — :func:`execute_plan` — runs every
plan, and the five legacy entry points are thin plan constructors:

========================================  =========  =================  =================
entry point                               axis       recipe             discipline
========================================  =========  =================  =================
:func:`parallel_ingest_f0` /              ``range``  ``clone``          ``merge-reduce``
:func:`parallel_ingest_into` /
:func:`parallel_merge_shards`
:func:`parallel_ingest_l0` /              ``range``  ``cleared-clone``  ``additive``
:func:`parallel_ingest_updates_into` /
:func:`parallel_merge_update_shards`
:func:`parallel_ingest_keyed`             ``key``    ``cleared-clone``  ``merge-reduce``
:func:`parallel_ingest_windowed`          ``epoch``  ``template-epochs``  ``adopt-in-order``
:func:`parallel_ingest_windowed_keyed`    ``epoch``  ``template-epochs``  ``adopt-in-order``
========================================  =========  =================  =================

The engine gives every plan three capabilities the hand-rolled
pipelines could not express: **pipelined shard handoff** (the
coordinator merges shard states as they complete instead of waiting on
an end-of-shard barrier), **per-shard failure recovery** (a worker that
raises or dies costs only its shard — bounded retries, deterministic
final state), and the **process-wide persistent worker pool**
(:mod:`repro.parallel.pool` — created lazily, reused across calls,
fork-safe, explicitly shut down via :func:`shutdown_pool`).

Execution modes:

* ``"processes"`` — worker processes drawn from the persistent pool;
  the wall-clock win on multi-core hosts (see
  ``benchmarks/bench_parallel_ingest.py``).
* ``"inline"`` — the identical shard / serialize / revive / merge
  dataflow run in-process.  Results are byte-for-byte the same; used for
  ``workers=1``, for tests, and on single-core machines where process
  fan-out cannot pay for itself.
"""

from __future__ import annotations

from .api import (
    mergeable_f0_names,
    mergeable_l0_names,
    parallel_ingest_f0,
    parallel_ingest_into,
    parallel_ingest_keyed,
    parallel_ingest_l0,
    parallel_ingest_updates_into,
    parallel_ingest_windowed,
    parallel_ingest_windowed_keyed,
    parallel_merge_shards,
    parallel_merge_update_shards,
)
from .plan import (
    DEFAULT_SHARD_BATCH,
    DEFAULT_SHARD_RETRIES,
    IngestPlan,
    ShardFault,
    execute_plan,
)
from .pool import (
    default_workers,
    discard_shared,
    get_pool,
    load_shared,
    pool_stats,
    reset_pool,
    shutdown_pool,
    stage_shared,
)
from .shards import (
    shard_epoch_slices,
    shard_items,
    shard_keyed_updates,
    shard_updates,
)
from .workers import InjectedShardFault

__all__ = [
    # The declarative core.
    "IngestPlan",
    "execute_plan",
    "ShardFault",
    "InjectedShardFault",
    "DEFAULT_SHARD_BATCH",
    "DEFAULT_SHARD_RETRIES",
    # Shard-axis partitioners.
    "shard_items",
    "shard_updates",
    "shard_keyed_updates",
    "shard_epoch_slices",
    # Entry points (plan constructors).
    "parallel_merge_shards",
    "parallel_merge_update_shards",
    "parallel_ingest_into",
    "parallel_ingest_updates_into",
    "parallel_ingest_f0",
    "parallel_ingest_l0",
    "parallel_ingest_keyed",
    "parallel_ingest_windowed",
    "parallel_ingest_windowed_keyed",
    # Registry probes.
    "mergeable_f0_names",
    "mergeable_l0_names",
    # The persistent worker pool.
    "default_workers",
    "get_pool",
    "reset_pool",
    "shutdown_pool",
    "pool_stats",
    "stage_shared",
    "load_shared",
    "discard_shared",
]
