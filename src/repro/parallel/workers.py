"""Worker-process bodies for the plan executor.

One module-level function, :func:`ingest_shard`, serves every shard
kind: the payload tells it how to revive the serialized worker-state
template, how to feed the shard, and what to ship back.  Module-level so
the process pool can import it by reference; payloads and results are
plain picklable values (bytes, arrays, tuples).

The payload also carries an optional *fault token* — the seam the
fault-injection tests (and chaos-style soak runs) use to make a specific
attempt of a specific shard raise or die.  Faults are attempt-scoped:
the executor stamps every payload with its attempt number, so a
"fail the first attempt" fault is deterministic and the retried attempt
succeeds, producing bytes identical to a zero-failure run.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from .. import serialize
from ..exceptions import ParameterError

__all__ = ["ShardFault", "InjectedShardFault", "ingest_shard"]


@dataclass(frozen=True)
class ShardFault:
    """Fault-injection spec for one shard of a plan.

    Attributes:
        mode: ``"raise"`` (the worker raises mid-shard) or ``"kill"``
            (the worker process dies by SIGKILL, breaking the pool —
            only meaningful under ``"processes"`` execution; inline
            execution downgrades it to a raise so the coordinator
            survives).
        failures: how many attempts fail before the shard succeeds.
            The default of 1 models a transient fault; a value above
            the plan's retry budget models a permanent one.
    """

    mode: str = "raise"
    failures: int = 1

    def __post_init__(self) -> None:
        if self.mode not in ("raise", "kill"):
            raise ParameterError("fault mode must be 'raise' or 'kill'")
        if self.failures < 1:
            raise ParameterError("fault failures must be at least 1")


class InjectedShardFault(RuntimeError):
    """Raised by a worker whose payload carried a ``"raise"`` fault."""


def _trip_fault(fault: Optional[str], inline: bool) -> None:
    if fault is None:
        return
    if fault == "kill" and not inline:
        os.kill(os.getpid(), signal.SIGKILL)
    raise InjectedShardFault("injected shard fault (%s)" % fault)


def _feed_items(estimator, shard, batch_size: Optional[int]) -> None:
    if batch_size is None:
        values = shard.tolist() if hasattr(shard, "tolist") else shard
        for item in values:
            estimator.update(int(item))
        return
    if batch_size <= 0:
        raise ParameterError("batch_size must be positive")
    for start in range(0, len(shard), batch_size):
        estimator.update_batch(shard[start : start + batch_size])


def _feed_updates(estimator, shard, batch_size: Optional[int]) -> None:
    items, deltas = shard
    if batch_size is None:
        item_values = items.tolist() if hasattr(items, "tolist") else items
        delta_values = deltas.tolist() if hasattr(deltas, "tolist") else deltas
        for item, delta in zip(item_values, delta_values):
            estimator.update(int(item), int(delta))
        return
    if batch_size <= 0:
        raise ParameterError("batch_size must be positive")
    for start in range(0, len(items), batch_size):
        estimator.update_batch(
            items[start : start + batch_size], deltas[start : start + batch_size]
        )


def _feed_keyed(store, shard, batch_size: Optional[int]) -> None:
    keys, items, deltas = shard
    if batch_size is None:
        batch_size = len(items)
    if batch_size <= 0:
        raise ParameterError("batch_size must be positive")
    for start in range(0, len(items), batch_size):
        stop = start + batch_size
        store.update_grouped(
            keys[start:stop],
            items[start:stop],
            None if deltas is None else deltas[start:stop],
        )


def _build_epochs(
    template: bytes, shard, batch_size: Optional[int], meta: Tuple[str, bool]
) -> List[Tuple[int, bytes]]:
    """Build every epoch state of one epoch-range shard from the template.

    Each run revives the ring's empty epoch template and feeds it the
    run's updates through the shared chunking policy
    (:func:`repro.window.windowed.ingest_epoch_sketch`), so the shipped
    epoch states are byte-identical to the ones sequential ingestion
    would have built in place.
    """
    from ..window.windowed import ingest_epoch_sketch, ingest_epoch_store

    kind, turnstile = meta
    out: List[Tuple[int, bytes]] = []
    for run in shard:
        if kind == "store":
            epoch, keys, items, deltas = run
            built = ingest_epoch_store(template, keys, items, deltas, batch_size)
        else:
            epoch, items, deltas = run
            built = ingest_epoch_sketch(template, items, deltas, batch_size, turnstile)
        out.append((int(epoch), built.to_bytes()))
    return out


def ingest_shard(payload: Tuple) -> Any:
    """Worker body: revive the template, ingest one shard, ship the state.

    ``payload`` is ``(kind, template, shard, batch_size, meta, fault,
    inline)``:

    * kind ``"items"`` — revive the template estimator and feed an item
      array; returns the serialized shard sketch.
    * kind ``"updates"`` — same for a turnstile ``(items, deltas)``
      shard.  (The template arrives *already cleared* — additive merges
      must not re-count the coordinator's mid-stream state per shard.)
    * kind ``"keyed"`` — revive an empty store clone and feed a
      ``(keys, items, deltas)`` key-range shard grouped; returns the
      serialized shard store.
    * kind ``"epochs"`` — build each epoch run of an epoch-range shard
      from the ring's epoch template; returns ``[(epoch, bytes), ...]``.
    """
    kind, template, shard, batch_size, meta, fault, inline = payload
    _trip_fault(fault, inline)
    if kind == "epochs":
        return _build_epochs(template, shard, batch_size, meta)
    state = serialize.loads(template)
    if kind == "items":
        _feed_items(state, shard, batch_size)
    elif kind == "updates":
        _feed_updates(state, shard, batch_size)
    elif kind == "keyed":
        _feed_keyed(state, shard, batch_size)
    else:  # pragma: no cover - plans validate their kind
        raise ParameterError("unknown shard kind %r" % (kind,))
    return state.to_bytes()
