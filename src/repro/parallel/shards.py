"""Shard-axis partitioners: range, key, and epoch sharding.

These are the ``axis`` half of an :class:`~repro.parallel.plan
.IngestPlan`: pure functions that turn one logical stream into
independent shard payloads, one per prospective worker.  Contiguity
matters only for human inspection — every merge discipline in the
library is insensitive to which worker got which slice — but contiguous
slices of cached NumPy arrays are views, so sharding never copies the
stream.

* :func:`shard_items` — ``range`` axis over an insertion-only item
  stream.
* :func:`shard_updates` — ``range`` axis over a turnstile
  ``(items, deltas)`` stream.
* :func:`shard_keyed_updates` — ``key`` axis: every key's updates land
  in exactly one shard (sorted-key-rank round-robin), so key-wise
  merge-back is exact for idempotent and additive families alike.
* :func:`shard_epoch_slices` — ``epoch`` axis: whole epochs go to one
  shard each, so the coordinator can adopt worker-built epoch sketches
  wholesale.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple, Union

from ..exceptions import ParameterError
from ..streams.model import MaterializedStream
from ..vectorize import HAS_NUMPY, np

__all__ = [
    "shard_items",
    "shard_updates",
    "shard_keyed_updates",
    "shard_epoch_slices",
]

ItemSource = Union[MaterializedStream, Sequence[int], "np.ndarray"]

UpdateShard = Tuple[Any, Any]

KeyedShard = Tuple[Any, Any, Any]


def _as_items(source: ItemSource):
    """Return the item identifiers of ``source`` as an array (or sequence)."""
    if isinstance(source, MaterializedStream):
        if not source.is_insertion_only():
            raise ParameterError(
                "item sharding is defined for insertion-only streams; "
                "use shard_updates / parallel_merge_update_shards for "
                "turnstile streams"
            )
        return source.item_array()
    if HAS_NUMPY and not isinstance(source, np.ndarray):
        return np.asarray(source)
    return source


def shard_items(items: ItemSource, shards: int) -> List[Any]:
    """Partition a stream's items into ``shards`` contiguous slices.

    Trailing shards may be one item shorter; with fewer items than
    shards, the surplus shards are empty.

    Args:
        items: a materialized insertion-only stream, or the identifiers
            themselves (sequence or ndarray).
        shards: positive shard count.
    """
    if shards <= 0:
        raise ParameterError("shard count must be positive")
    data = _as_items(items)
    total = len(data)
    base, surplus = divmod(total, shards)
    slices: List[Any] = []
    start = 0
    for index in range(shards):
        length = base + (1 if index < surplus else 0)
        slices.append(data[start : start + length])
        start += length
    return slices


def _as_update_arrays(source) -> UpdateShard:
    """Return ``(items, deltas)`` arrays for a turnstile source."""
    if isinstance(source, MaterializedStream):
        return source.item_array(), source.delta_array()
    items, deltas = source
    if HAS_NUMPY:
        if not isinstance(items, np.ndarray):
            items = np.asarray(items)
        if not isinstance(deltas, np.ndarray):
            deltas = np.asarray(deltas)
    if len(items) != len(deltas):
        raise ParameterError("turnstile sources need as many deltas as items")
    return items, deltas


def shard_updates(source, shards: int) -> List[UpdateShard]:
    """Partition a turnstile stream into ``shards`` contiguous update slices.

    The L0 counterpart of :func:`shard_items`: each shard is an
    ``(items, deltas)`` pair of aligned slices (NumPy views — sharding
    never copies the stream).

    Args:
        source: a materialized stream, or an ``(items, deltas)`` pair of
            aligned integer sequences/arrays.
        shards: positive shard count.
    """
    if shards <= 0:
        raise ParameterError("shard count must be positive")
    items, deltas = _as_update_arrays(source)
    total = len(items)
    base, surplus = divmod(total, shards)
    slices: List[UpdateShard] = []
    start = 0
    for index in range(shards):
        length = base + (1 if index < surplus else 0)
        slices.append(
            (items[start : start + length], deltas[start : start + length])
        )
        start += length
    return slices


def shard_keyed_updates(keys, items, deltas=None, shards: int = 1) -> List[KeyedShard]:
    """Partition a keyed batch so each key lands in exactly one shard.

    Keys are assigned to shards by sorted-key-rank ranges (``np.unique``
    rank modulo ``shards``), which balances shard sizes under skewed key
    distributions better than hashing raw key values; each shard keeps
    its updates in stream order.

    Args:
        keys: per-update integer keys (sequence or ndarray).
        items: per-update identifiers, aligned with ``keys``.
        deltas: optional signed deltas (turnstile stores).
        shards: positive shard count.

    Returns:
        ``shards`` triples ``(keys, items, deltas)`` (``deltas`` is
        ``None`` throughout when not supplied); some may be empty.
    """
    if shards <= 0:
        raise ParameterError("shard count must be positive")
    if not HAS_NUMPY:  # pragma: no cover - numpy is a declared dependency
        raise ParameterError("shard_keyed_updates requires numpy")
    key_array = np.asarray(keys)
    item_array = items if isinstance(items, np.ndarray) else np.asarray(items)
    if len(key_array) != len(item_array):
        raise ParameterError("keyed sharding needs one key per item")
    delta_array = None
    if deltas is not None:
        delta_array = deltas if isinstance(deltas, np.ndarray) else np.asarray(deltas)
        if len(delta_array) != len(item_array):
            raise ParameterError("keyed sharding needs one delta per item")
    if len(key_array) == 0:
        empty_deltas = None if delta_array is None else delta_array[:0]
        return [
            (key_array[:0], item_array[:0], empty_deltas) for _ in range(shards)
        ]
    _, inverse = np.unique(key_array, return_inverse=True)
    assignment = inverse % shards
    result: List[KeyedShard] = []
    for shard in range(shards):
        mask = assignment == shard
        result.append(
            (
                key_array[mask],
                item_array[mask],
                None if delta_array is None else delta_array[mask],
            )
        )
    return result


def shard_epoch_slices(epochs, shards: int) -> List[Tuple[int, int]]:
    """Partition a timestamped stream into epoch-aligned index ranges.

    The windowed counterpart of :func:`shard_items`: the distinct epochs
    are split into ``shards`` contiguous groups (so no epoch ever spans
    two shards) and each group maps back to one contiguous ``(start,
    stop)`` range of update indices.  With fewer epochs than shards the
    surplus ranges are empty.

    Args:
        epochs: per-update epoch numbers, non-decreasing.
        shards: positive shard count.
    """
    from ..window.windowed import epoch_runs

    if shards <= 0:
        raise ParameterError("shard count must be positive")
    runs = epoch_runs(epochs)
    ranges: List[Tuple[int, int]] = []
    if not runs:
        return [(0, 0)] * shards
    groups = np.array_split(np.arange(len(runs)), shards)
    for group in groups:
        if len(group) == 0:
            ranges.append((0, 0))
        else:
            ranges.append((runs[int(group[0])][1], runs[int(group[-1])][2]))
    return ranges
