"""The NumPy reference kernel backend.

This module holds the exact array implementations of every kernel behind
the :mod:`repro.vectorize` seam — the code that bought the original
10--100x over scalar Python (PRs 1/3/4).  It is always available whenever
numpy is installed, it defines the bit-identical contract every other
backend must match, and it is what the compiled backend delegates to for
inputs outside its word-sized domain (object dtypes, moduli at or beyond
``2^63``).

The module itself *is* the backend object: :func:`repro.kernels.load_backend`
returns it directly, so the kernel functions are plain module-level
functions with no dispatch indirection of their own.
"""

from __future__ import annotations

from typing import List

import numpy as np

#: Registry name under which this module is exposed as a backend.
name = "numpy"

_MASK64 = (1 << 64) - 1
_MERSENNE_EXPONENTS = {(1 << 31) - 1: 31, (1 << 61) - 1: 61}

_DEBRUIJN64 = np.uint64(0x03F79D71B4CB0A89)
_DEBRUIJN64_TABLE = np.zeros(64, dtype=np.int64)
for _i in range(64):
    _DEBRUIJN64_TABLE[((1 << _i) * 0x03F79D71B4CB0A89 & _MASK64) >> 58] = _i


def describe() -> dict:
    """Structured diagnostics for :func:`repro.kernels.kernel_backend_info`."""
    return {"name": name, "numpy": np.__version__}


# --------------------------------------------------------------------------
# Shared helpers.
# --------------------------------------------------------------------------


def _reduce_in_place(values: "np.ndarray", prime: int, rounds: int = 1) -> "np.ndarray":
    """Conditionally subtract ``prime`` from ``values`` (owned buffer), in place.

    Branch-free: for ``values < 2p`` (with ``p < 2^63``), ``values - p``
    wraps past ``2^63`` exactly when ``values < p``, so the elementwise
    minimum of the two is the reduced representative.  This outperforms a
    masked subtract by a wide margin on large arrays.
    """
    p = np.uint64(prime)
    for _ in range(rounds):
        np.minimum(values, values - p, out=values)
    return values


def _mersenne_fold(
    values: "np.ndarray", exponent: int, prime: int, bound_bits: int = 64
) -> "np.ndarray":
    """Reduce ``values < 2^bound_bits`` modulo the Mersenne prime ``2^exponent - 1``.

    Uses ``2^exponent = 1 (mod p)``: repeatedly add the high part to the low
    part (each round shrinks the bound to ``max(exponent, bound - exponent)
    + 1`` bits), then subtract ``p`` the provably required number of times —
    division-free, which is what makes the Mersenne moduli the batch fast
    path.  The caller must own ``values`` (every call site passes a fresh
    product array); it may be reduced in place.
    """
    if bound_bits < exponent:
        return values  # already strictly below p
    if bound_bits == exponent:
        return _reduce_in_place(values, prime)  # at most the value p itself
    mask = np.uint64(prime)
    e = np.uint64(exponent)
    # After each fold, folded <= (2^e - 1) + (2^h - 1) where h is the bit
    # width of the (pre-fold) high part; refold while the high part alone
    # can exceed p, then subtract p once (twice in the h == e edge case,
    # where folded can reach exactly 2p).
    high_bits = bound_bits - exponent
    folded = (values & mask) + (values >> e)
    while high_bits > exponent:
        high_bits = max(exponent, high_bits) + 1 - exponent
        folded = (folded & mask) + (folded >> e)
    return _reduce_in_place(folded, prime, rounds=2 if high_bits >= exponent else 1)


def _mersenne_rotate(values: "np.ndarray", shift: int, exponent: int, prime: int) -> "np.ndarray":
    """Return ``values * 2^shift mod (2^exponent - 1)`` for ``values < 2^exponent``.

    Multiplying by a power of two modulo a Mersenne prime is a bit rotation
    within the ``exponent``-bit word; both halves stay below ``2^exponent``
    so the computation never overflows ``uint64`` and one conditional
    subtract restores ``[0, p)``.  ``values`` must be caller-owned.
    """
    shift %= exponent
    if shift == 0:
        return _reduce_in_place(values, prime)
    rotated = (values & np.uint64((1 << (exponent - shift)) - 1)) << np.uint64(shift)
    rotated += values >> np.uint64(exponent - shift)
    return _reduce_in_place(rotated, prime)


def _to_object_array(values: "np.ndarray") -> "np.ndarray":
    """Convert a numeric ndarray to an object array of Python ints."""
    if values.dtype == object:
        return values
    out = np.empty(values.shape, dtype=object)
    out[:] = [int(v) for v in values.tolist()]
    return out


# --------------------------------------------------------------------------
# Exact batched modular arithmetic.
# --------------------------------------------------------------------------


def mulmod(
    multiplier: int,
    keys: "np.ndarray",
    prime: int,
    key_bound: int,
) -> "np.ndarray":
    """Return ``(multiplier * keys) % prime`` exactly, elementwise.

    Args:
        multiplier: a scalar in ``[0, prime)``.
        keys: ``uint64`` (or object) array with values in ``[0, key_bound)``.
        prime: the field modulus.
        key_bound: exclusive upper bound on the key values; selects the
            fastest exact strategy.

    Returns:
        A ``uint64`` array when the arithmetic fits in words, otherwise an
        object array of Python integers.
    """
    if keys.dtype == object:
        return (keys * multiplier) % prime
    key_bits = max(key_bound - 1, 1).bit_length()
    exponent = _MERSENNE_EXPONENTS.get(prime)
    product_bits = (multiplier * max(key_bound - 1, 1)).bit_length()
    # Direct path: the full product fits in an unsigned 64-bit word.
    if product_bits <= 64:
        product = np.uint64(multiplier) * keys
        if prime >= (1 << 64):
            return product  # already below the modulus
        if exponent is not None:
            # Division-free reduction for the Mersenne moduli.
            return _mersenne_fold(product, exponent, prime, bound_bits=product_bits)
        return product % np.uint64(prime)
    if exponent is not None and key_bits <= 64 - (exponent // 2 + 1):
        # Split the multiplier into limbs small enough that every partial
        # product fits in 64 bits, then recombine with Mersenne rotations:
        # Horner over limbs, entirely division-free.
        limb_bits = 64 - key_bits
        acc = None
        shift = ((exponent + limb_bits - 1) // limb_bits - 1) * limb_bits
        while shift >= 0:
            limb = (multiplier >> shift) & ((1 << limb_bits) - 1)
            part_bits = (limb * max(key_bound - 1, 1)).bit_length()
            part = _mersenne_fold(
                np.uint64(limb) * keys, exponent, prime, bound_bits=part_bits
            )
            if acc is None:
                acc = part
            else:
                acc = _mersenne_rotate(acc, limb_bits, exponent, prime)
                acc += part
                _reduce_in_place(acc, prime)
            shift -= limb_bits
        return acc
    if prime < (1 << 62) and key_bits <= 32:
        # Generic split: high/low halves of the multiplier, with the high
        # product shifted back into range by repeated exact doubling.
        s = 31
        high = (np.uint64(multiplier >> s) * keys) % np.uint64(prime)
        for _ in range(s):
            high = high + high
            _reduce_in_place(high, prime)
        low = (np.uint64(multiplier & ((1 << s) - 1)) * keys) % np.uint64(prime)
        high += low
        return _reduce_in_place(high, prime)
    # Fallback: exact Python-int arithmetic, still array-at-a-time.
    return (_to_object_array(keys) * multiplier) % prime


def affine_mod(
    multiplier: int,
    offset: int,
    keys: "np.ndarray",
    prime: int,
    key_bound: int,
) -> "np.ndarray":
    """Return ``(multiplier * keys + offset) % prime`` exactly, elementwise."""
    product = mulmod(multiplier, keys, prime, key_bound)
    if product.dtype == object or prime >= (1 << 63):
        return (_to_object_array(product) + offset) % prime
    # product < prime < 2^63 and offset < prime, so the sum fits in uint64.
    product += np.uint64(offset)
    return _reduce_in_place(product, prime)


def mod_range(values: "np.ndarray", range_size: int) -> "np.ndarray":
    """Reduce hash values modulo an output range, cheaply where possible.

    Power-of-two ranges become a mask (the common case for the estimators'
    bin counts and the cubed spreading domains); ranges at least ``2^64``
    leave 64-bit values untouched; everything else pays one division pass.
    """
    if values.dtype == object:
        return values % range_size
    if range_size >= (1 << 64):
        return values
    if range_size & (range_size - 1) == 0:
        return values & np.uint64(range_size - 1)
    return values % np.uint64(range_size)


def affine_mod_range(
    multiplier: int,
    offset: int,
    keys: "np.ndarray",
    prime: int,
    key_bound: int,
    range_size: int,
) -> "np.ndarray":
    """The full Carter--Wegman chain ``((a*k + b) % p) % v``, elementwise.

    The reference implementation is the plain composition of
    :func:`affine_mod` and :func:`mod_range`; compiled backends fuse the
    chain into one pass.  This is the entire
    :meth:`repro.hashing.universal.PairwiseHash.hash_batch_validated`
    evaluation, exposed as a seam kernel so the h1/h2/h4 hash passes fuse.
    """
    return mod_range(affine_mod(multiplier, offset, keys, prime, key_bound), range_size)


def mulmod_arrays(
    left: "np.ndarray",
    right: "np.ndarray",
    prime: int,
    right_bound: int,
) -> "np.ndarray":
    """Return ``(left * right) % prime`` exactly for two arrays.

    ``left`` may hold any values in ``[0, prime)``; ``right`` values must lie
    in ``[0, right_bound)``.  Used by the Horner evaluation of the k-wise
    polynomial families, where the accumulator is a full field element but
    the evaluation point is bounded by the hash's key domain.
    """
    if left.dtype == object or right.dtype == object:
        return (_to_object_array(left) * _to_object_array(right)) % prime
    right_bits = max(right_bound - 1, 1).bit_length()
    exponent = _MERSENNE_EXPONENTS.get(prime)
    if prime * max(right_bound - 1, 1) < (1 << 64):
        product = left * right
        if exponent is not None:
            bound = ((prime - 1) * max(right_bound - 1, 1)).bit_length()
            return _mersenne_fold(product, exponent, prime, bound_bits=bound)
        return product % np.uint64(prime)
    if exponent is not None and right_bits <= 63 - exponent // 2:
        # Limb-split the *left* array; each limb-by-right product fits.
        limb_bits = 64 - right_bits
        acc = None
        shift = ((exponent + limb_bits - 1) // limb_bits - 1) * limb_bits
        while shift >= 0:
            limb = (left >> np.uint64(shift)) & np.uint64((1 << limb_bits) - 1)
            part = _mersenne_fold(
                limb * right, exponent, prime, bound_bits=limb_bits + right_bits
            )
            if acc is None:
                acc = part
            else:
                acc = _mersenne_rotate(acc, limb_bits, exponent, prime)
                acc += part
                _reduce_in_place(acc, prime)
            shift -= limb_bits
        return acc
    if prime < (1 << 52):
        # Barrett-style reduction with a float64 quotient estimate: the
        # quotient is off by at most 2, so adding 2p before the final exact
        # remainder keeps everything non-negative and inside uint64.
        quotient = np.floor(
            left.astype(np.float64) * right.astype(np.float64) / float(prime)
        ).astype(np.uint64)
        residue = left * right - quotient * np.uint64(prime)  # exact mod 2^64
        residue = residue + np.uint64(2 * prime)
        return residue % np.uint64(prime)
    return (_to_object_array(left) * _to_object_array(right)) % prime


def kwise_mod_range(
    coefficients,
    keys: "np.ndarray",
    prime: int,
    key_bound: int,
    range_size: int,
) -> "np.ndarray":
    """Evaluate a Carter--Wegman polynomial on a whole key array, reduced.

    The full :meth:`repro.hashing.kwise.KWiseHash.hash_batch_validated`
    chain — Horner's rule over ``k`` coefficients (low degree first, all in
    ``[0, prime)``) followed by one range reduction — exposed as a seam
    kernel so compiled backends can fuse all ``k`` field operations into a
    single pass per key.  The reference implementation below is the PR-1
    word-sized Horner loop, bit-identical to the scalar evaluation.

    Args:
        coefficients: the polynomial's ``k >= 1`` coefficients.
        keys: validated key array with values in ``[0, key_bound)``.
        prime: the field modulus.
        key_bound: exclusive upper bound on the key values.
        range_size: the output range ``v`` of the hash.
    """
    p = prime
    use_words = p < (1 << 63) and keys.dtype != object
    if use_words:
        acc = np.full(keys.shape, coefficients[-1], dtype=np.uint64)
    else:
        keys = keys.astype(object)
        acc = np.full(keys.shape, coefficients[-1], dtype=object)
    for coefficient in reversed(coefficients[:-1]):
        acc = mulmod_arrays(acc, keys, p, key_bound)
        if acc.dtype == object:
            acc = (acc + coefficient) % p
        else:
            acc = acc + np.uint64(coefficient)
            np.subtract(acc, np.uint64(p), out=acc, where=acc >= np.uint64(p))
    return mod_range(acc, range_size)


# --------------------------------------------------------------------------
# Grouped scatter reductions (the keyed sketch-store / turnstile core).
# --------------------------------------------------------------------------


def grouped_residue_sums(
    group_index: "np.ndarray",
    group_count: int,
    residues: "np.ndarray",
    prime: int,
) -> List[int]:
    """Sum residues per group exactly, returning plain Python ints.

    This is the scatter-accumulate core of the turnstile batch paths: the
    per-item fingerprint/counter contributions (each already reduced to
    ``[0, prime)``) are summed per touched cell, and the caller folds one
    total into each cell with a single exact ``% prime``.  Equivalence
    with the scalar loop is algebraic: ``(((c + r1) % p) + r2) % p ==
    (c + r1 + r2) % p``.

    For word-sized residues the sums are accumulated in split 32-bit
    halves so no intermediate can overflow ``uint64`` (exact for batches
    up to ``2^32`` updates — far beyond any chunk size the pipeline
    uses); object-dtype residues take the exact big-int path.

    Args:
        group_index: ``int64`` array mapping each residue to its group
            (as produced by ``np.unique(..., return_inverse=True)``).
        group_count: number of groups.
        residues: per-item contributions in ``[0, prime)``.
        prime: the modulus the residues were reduced by.
    """
    if residues.dtype == object:
        sums = np.zeros(group_count, dtype=object)
        np.add.at(sums, group_index, residues)
        return [int(total) for total in sums.tolist()]
    low = np.zeros(group_count, dtype=np.uint64)
    np.add.at(low, group_index, residues & np.uint64(0xFFFFFFFF))
    if prime <= (1 << 32):
        return [int(total) for total in low.tolist()]
    high = np.zeros(group_count, dtype=np.uint64)
    np.add.at(high, group_index, residues >> np.uint64(32))
    return [
        (int(h) << 32) + int(l) for h, l in zip(high.tolist(), low.tolist())
    ]


def group_slices(indices: "np.ndarray"):
    """Sort a batch by group index and return the per-group structure.

    The shared first half of every grouped scatter: one stable argsort
    brings equal indices together, and the run boundaries identify each
    touched group exactly once.

    Args:
        indices: integer ndarray of group indices (any values).

    Returns:
        ``(order, starts, touched)`` where ``order`` permutes the batch
        into index-sorted position, ``starts`` marks the first sorted
        position of each run, and ``touched`` holds each distinct index
        once (in ascending order).  Empty inputs return empty arrays.
    """
    if len(indices) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    order = np.argsort(indices, kind="stable")
    ordered = indices[order]
    starts = np.flatnonzero(
        np.concatenate((np.ones(1, dtype=bool), ordered[1:] != ordered[:-1]))
    )
    return order, starts, ordered[starts]


def grouped_max_scatter(
    target: "np.ndarray", indices: "np.ndarray", values: "np.ndarray"
) -> None:
    """Apply ``target[i] = max(target[i], v)`` for a whole batch, grouped.

    The bulk register/counter reduction behind ``update_grouped``: the
    batch is sorted by target index (:func:`group_slices`), each run is
    collapsed with one ``np.maximum.reduceat`` pass, and each touched
    cell is written once.  Identical to applying the pairs one at a time
    in any order — maximum is commutative, associative, and idempotent —
    and much faster than the buffered ``np.ufunc.at`` scatter on large
    batches.

    Args:
        target: 1-D integer ndarray, mutated in place.
        indices: positions into ``target`` (already range-validated by
            the caller's hashing); duplicates reduce together.
        values: candidate values; must fit ``target``'s dtype (callers
            cap them at the counter width, as the scalar paths do).
    """
    order, starts, touched = group_slices(indices)
    if len(touched) == 0:
        return
    maxima = np.maximum.reduceat(values[order], starts)
    target[touched] = np.maximum(
        target[touched], maxima.astype(target.dtype, copy=False)
    )


def grouped_or_scatter(
    target: "np.ndarray", indices: "np.ndarray", masks: "np.ndarray"
) -> None:
    """Apply ``target[i] |= mask`` for a whole batch, grouped.

    The bitmap counterpart of :func:`grouped_max_scatter` (OR is likewise
    commutative, associative, and idempotent), used by the bit-plane
    sketch arrays to set many bits across many bitmaps in one pass.

    Args:
        target: 1-D ``uint8`` byte buffer, mutated in place.
        indices: byte positions into ``target``; duplicates OR together.
        masks: per-entry ``uint8`` bit masks.
    """
    order, starts, touched = group_slices(indices)
    if len(touched) == 0:
        return
    combined = np.bitwise_or.reduceat(masks[order], starts)
    target[touched] |= combined


# --------------------------------------------------------------------------
# Vectorized word primitives.
# --------------------------------------------------------------------------


def lsb64_batch(values: "np.ndarray", zero_value: int) -> "np.ndarray":
    """Vectorized least-significant-set-bit of 64-bit words.

    The de Bruijn multiplication of :func:`repro.hashing.bitops.lsb64`
    applied to a whole ``uint64`` array; entries equal to zero map to
    ``zero_value`` (the paper's ``lsb(0) = log n`` convention).

    Args:
        values: ``uint64`` array.
        zero_value: result assigned to zero entries.

    Returns:
        An ``int64`` array of bit indices (or ``zero_value``).
    """
    isolated = values & (np.uint64(0) - values)
    indices = (isolated * _DEBRUIJN64) >> np.uint64(58)
    result = _DEBRUIJN64_TABLE[indices]
    if zero_value != 0:
        return np.where(values == 0, np.int64(zero_value), result)
    return np.where(values == 0, np.int64(0), result)
