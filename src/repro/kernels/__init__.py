"""Kernel backend registry for the vectorize seam.

The hot kernels behind :mod:`repro.vectorize` — batched Mersenne-prime
hashing, the grouped scatter reductions, ``lsb64_batch`` — are implemented
by pluggable *backends*:

``numpy``
    The always-available reference implementation
    (:mod:`repro.kernels.numpy_backend`).  It defines the bit-identical
    contract every other backend must match on every state word.

``compiled``
    Fused single-pass C kernels (:mod:`repro.kernels.compiled_backend`),
    built on first use from the bundled ``_kernels.c`` with the machine's
    C compiler and loaded through :mod:`ctypes`.  Typically 5--50x faster
    than the NumPy path on the hashing and scatter kernels.

Selection happens once, lazily, on the first kernel call:

* ``REPRO_KERNEL_BACKEND=numpy|compiled|auto`` (default ``auto``:
  compiled when it can be built, otherwise NumPy with a one-time
  :class:`RuntimeWarning`).  Forcing ``compiled`` on a machine that
  cannot build it raises :class:`~repro.exceptions.KernelBackendError`
  instead of silently running slower than requested.
* :func:`set_backend` switches programmatically (tests, notebooks);
  :func:`kernel_backend_info` reports what is active and why.

Adding a backend (a CuPy port, say) means providing an object with the
kernel methods listed in ``REQUIRED_KERNELS`` and registering a loader in
``_LOADERS``; ``docs/architecture.md`` walks through the contract.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, List, Optional

from ..exceptions import KernelBackendError

__all__ = [
    "REQUIRED_KERNELS",
    "available_backends",
    "load_backend",
    "set_backend",
    "get_backend",
    "active",
    "kernel_backend_info",
    "require_backend",
]

#: Environment variable consulted (lazily) for the initial backend choice.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Every backend must expose these callables, matching the reference
#: signatures in :mod:`repro.kernels.numpy_backend` bit for bit.
REQUIRED_KERNELS = (
    "mulmod",
    "affine_mod",
    "mod_range",
    "affine_mod_range",
    "mulmod_arrays",
    "kwise_mod_range",
    "grouped_residue_sums",
    "grouped_max_scatter",
    "grouped_or_scatter",
    "lsb64_batch",
)


def _load_numpy():
    from . import numpy_backend

    return numpy_backend


def _load_compiled():
    from . import compiled_backend

    return compiled_backend.load()


_LOADERS = {
    "numpy": _load_numpy,
    "compiled": _load_compiled,
}

#: The active backend object, or ``None`` before first resolution.
_active = None
#: Why the active backend was chosen ("env", "auto", "set_backend", "fallback").
_chosen_by: Optional[str] = None
#: Loaded-backend cache so repeated load_backend calls share one build/self-test.
_loaded: Dict[str, object] = {}
_warned_fallback = False


def available_backends() -> List[str]:
    """Names of all registered backends (loadable or not)."""
    return sorted(_LOADERS)


def load_backend(name: str):
    """Load (but do not activate) the named backend.

    Used by the cross-backend tests and benchmarks, which drive several
    backends side by side without touching the process-wide selection.

    Raises:
        KernelBackendError: unknown name, or the backend cannot load
            (e.g. ``compiled`` without a C toolchain).
    """
    try:
        backend = _loaded.get(name)
        if backend is None:
            try:
                loader = _LOADERS[name]
            except KeyError:
                raise KernelBackendError(
                    "unknown kernel backend %r (available: %s)"
                    % (name, ", ".join(available_backends()))
                ) from None
            backend = loader()
            _loaded[name] = backend
        return backend
    except KernelBackendError:
        raise
    except Exception as exc:  # loader crashed: surface as a backend error
        raise KernelBackendError(
            "kernel backend %r failed to load: %s" % (name, exc)
        ) from exc


def _resolve_from_environment():
    """First-use resolution of ``REPRO_KERNEL_BACKEND``."""
    global _warned_fallback
    requested = os.environ.get(ENV_VAR, "auto").strip().lower() or "auto"
    if requested != "auto":
        # Explicitly forced: load or raise, never fall back silently.
        return load_backend(requested), "env"
    try:
        return load_backend("compiled"), "auto"
    except KernelBackendError as exc:
        if not _warned_fallback:
            _warned_fallback = True
            warnings.warn(
                "repro.kernels: compiled backend unavailable (%s); "
                "falling back to the NumPy reference backend. Set "
                "%s=numpy to silence this warning." % (exc, ENV_VAR),
                RuntimeWarning,
                stacklevel=3,
            )
        return load_backend("numpy"), "fallback"


def active():
    """Return the active backend, resolving it on first use.

    Resolution is deliberately lazy: importing :mod:`repro` (or even
    :mod:`repro.vectorize`, which works without numpy) never triggers a
    compile; the first *kernel call* does.
    """
    global _active, _chosen_by
    if _active is None:
        _active, _chosen_by = _resolve_from_environment()
    return _active


def get_backend() -> str:
    """Name of the active backend (resolving it if needed)."""
    return active().name


def set_backend(name: str):
    """Activate the named backend process-wide and return it.

    Raises:
        KernelBackendError: unknown name or the backend cannot load; the
            previously active backend stays in effect.
    """
    global _active, _chosen_by
    backend = load_backend(name)
    _active, _chosen_by = backend, "set_backend"
    return backend


def kernel_backend_info() -> dict:
    """Diagnostics for the active backend (also recorded by benchmarks).

    Returns a dict with at least ``name`` (the active backend), ``chosen_by``
    (``"env"``, ``"auto"``, ``"fallback"``, or ``"set_backend"``), and
    ``available`` (per-registered-backend loadability).
    """
    backend = active()
    info = {
        "name": backend.name,
        "chosen_by": _chosen_by,
        "requested": os.environ.get(ENV_VAR, "auto"),
        "available": {},
    }
    for candidate in available_backends():
        try:
            load_backend(candidate)
            info["available"][candidate] = True
        except KernelBackendError:
            info["available"][candidate] = False
    if hasattr(backend, "describe"):
        info["backend"] = backend.describe()
    return info


def require_backend(name: str, feature: str) -> None:
    """Raise an actionable error unless the named backend can load.

    The backend-seam counterpart of ``vectorize.require_numpy``: call
    sites that *need* a specific backend (benchmark gates, forced CI
    runs) get a message naming the missing prerequisite instead of a
    silent fallback.
    """
    try:
        load_backend(name)
    except KernelBackendError as exc:
        raise KernelBackendError(
            "%s requires the %r kernel backend, which is unavailable: %s"
            % (feature, name, exc)
        ) from exc
