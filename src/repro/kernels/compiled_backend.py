"""The compiled (C, via ctypes) kernel backend.

The fused single-pass kernels live in ``_kernels.c`` next to this module:
plain C with ``unsigned __int128`` arithmetic, no Python.h and no NumPy
headers.  :func:`load` compiles that source with whatever C compiler the
machine has (``$CC``, then ``cc``/``gcc``/``clang``), caches the shared
object under a content-addressed name so the build runs once per source
revision, loads it through :mod:`ctypes`, and cross-checks every kernel
against the NumPy reference backend on deterministic samples before
handing the backend out — a machine whose toolchain miscompiles the
kernels falls back to NumPy instead of corrupting sketch state.

Each wrapper below handles exactly the word-sized domain (``uint64`` keys,
moduli below ``2^63``/``2^64``) and delegates everything else — object
dtypes, giant moduli, exotic target dtypes — to
:mod:`repro.kernels.numpy_backend`, so the backend as a whole accepts the
same inputs as the reference and stays bit-identical on all of them.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shlex
import shutil
import subprocess
import tempfile
from typing import List, Optional

from ..exceptions import KernelBackendError
from . import numpy_backend as _ref
from .numpy_backend import np

#: Bumped together with ``repro_kernels_abi()`` in ``_kernels.c``.
_ABI_VERSION = 1

_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_kernels.c")

#: Extra compile flags appended to the kernel build.  The hook CI uses for
#: sanitizer-hardened builds, e.g.::
#:
#:     REPRO_KERNEL_CFLAGS="-fsanitize=undefined -fno-sanitize-recover"
#:
#: The flags participate in the build-cache key (see
#: :func:`_library_basename`), so a sanitizer build and a production build
#: of the same source never collide in the source-hash-keyed .so cache.
CFLAGS_ENV_VAR = "REPRO_KERNEL_CFLAGS"

_U64_MAX = (1 << 64) - 1
_I64_MAX = (1 << 63) - 1
_MERSENNE_EXPONENTS = {(1 << 31) - 1: 31, (1 << 61) - 1: 61}

#: Target dtypes the C max-scatter is specialised for.
_MAX_SCATTER_SUFFIXES = {
    "uint8": "u8",
    "uint16": "u16",
    "uint32": "u32",
    "uint64": "u64",
    "int8": "i8",
    "int16": "i16",
    "int32": "i32",
    "int64": "i64",
}


def _find_compiler() -> Optional[str]:
    """Return the C compiler to use, or ``None`` when the machine has none."""
    explicit = os.environ.get("CC")
    if explicit:
        resolved = shutil.which(explicit)
        if resolved:
            return resolved
    for candidate in ("cc", "gcc", "clang"):
        resolved = shutil.which(candidate)
        if resolved:
            return resolved
    return None


def _extra_cflags() -> List[str]:
    """Extra compiler flags from ``REPRO_KERNEL_CFLAGS`` (shell-split)."""
    return shlex.split(os.environ.get(CFLAGS_ENV_VAR, ""))


def _library_basename() -> str:
    """Cache filename keyed by source content *and* the extra CFLAGS.

    Differently-flagged builds (UBSan vs production) of identical source
    produce different binaries; keying the cache on both means switching
    ``REPRO_KERNEL_CFLAGS`` can never pick up a stale library built under
    other flags.
    """
    digest = hashlib.sha256()
    with open(_SOURCE, "rb") as handle:
        digest.update(handle.read())
    digest.update(b"\0")
    digest.update(" ".join(_extra_cflags()).encode("utf-8"))
    return "repro_kernels-%s.so" % digest.hexdigest()[:16]


def _build_dirs() -> List[str]:
    """Candidate cache directories, most preferred first.

    ``REPRO_KERNEL_BUILD_DIR`` is an *exclusive* override: when set, no
    other location is consulted, so tests and hermetic builds fully
    control where (and whether) a cached library exists.
    """
    override = os.environ.get("REPRO_KERNEL_BUILD_DIR")
    if override:
        return [override]
    return [
        os.path.join(os.path.dirname(_SOURCE), "_build"),
        os.path.join(os.path.expanduser("~"), ".cache", "repro-kernels"),
        os.path.join(tempfile.gettempdir(), "repro-kernels-%d" % os.getuid()),
    ]


def _compile(compiler: str, library: str) -> None:
    """Compile the kernel source into ``library`` (atomic rename)."""
    directory = os.path.dirname(library)
    fd, scratch = tempfile.mkstemp(suffix=".so", dir=directory)
    os.close(fd)
    command = [
        compiler,
        "-O3",
        "-std=c11",
        "-fPIC",
        "-shared",
        "-fvisibility=hidden",
        *_extra_cflags(),
        "-o",
        scratch,
        _SOURCE,
    ]
    try:
        completed = subprocess.run(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            timeout=120,
        )
        if completed.returncode != 0:
            raise KernelBackendError(
                "compiling %s failed (%s):\n%s"
                % (
                    os.path.basename(_SOURCE),
                    " ".join(command[:2]),
                    completed.stdout.decode("utf-8", "replace").strip(),
                )
            )
        os.replace(scratch, library)
    finally:
        if os.path.exists(scratch):
            os.unlink(scratch)


def _build_library() -> str:
    """Return the path to a compiled shared object, building if needed."""
    if not os.path.exists(_SOURCE):
        raise KernelBackendError("kernel source %s is missing" % _SOURCE)
    basename = _library_basename()
    for directory in _build_dirs():
        library = os.path.join(directory, basename)
        if os.path.exists(library):
            return library
    compiler = _find_compiler()
    if compiler is None:
        raise KernelBackendError(
            "no C compiler found (tried $CC, cc, gcc, clang); install one or "
            "set REPRO_KERNEL_BACKEND=numpy to use the reference backend"
        )
    last_error: Optional[Exception] = None
    for directory in _build_dirs():
        library = os.path.join(directory, basename)
        try:
            os.makedirs(directory, exist_ok=True)
            _compile(compiler, library)
            return library
        except KernelBackendError:
            raise  # a real compile failure will not improve elsewhere
        except OSError as exc:  # unwritable cache dir: try the next one
            last_error = exc
    raise KernelBackendError(
        "no writable build directory for the compiled kernel backend "
        "(set REPRO_KERNEL_BUILD_DIR)"
    ) from last_error


def _ptr(array: "np.ndarray") -> ctypes.c_void_p:
    return ctypes.c_void_p(array.ctypes.data)


class CompiledKernels:
    """Backend object wrapping the ctypes-loaded kernel library."""

    name = "compiled"

    def __init__(self, library_path: str, compiler: Optional[str]) -> None:
        self._library_path = library_path
        self._compiler = compiler
        lib = ctypes.CDLL(library_path)
        abi = int(lib.repro_kernels_abi())
        if abi != _ABI_VERSION:
            raise KernelBackendError(
                "compiled kernel ABI mismatch: library %s has version %d, "
                "expected %d (delete the cached .so to rebuild)"
                % (library_path, abi, _ABI_VERSION)
            )
        self._lib = lib

    def describe(self) -> dict:
        """Structured diagnostics for :func:`repro.kernels.kernel_backend_info`."""
        return {
            "name": self.name,
            "library": self._library_path,
            "compiler": self._compiler,
            "abi": _ABI_VERSION,
            "cflags": _extra_cflags(),
        }

    # -- helpers ---------------------------------------------------------------------

    @staticmethod
    def _mersenne(prime: int) -> int:
        return _MERSENNE_EXPONENTS.get(prime, 0)

    # The next two predicates mirror the branch structure of the reference
    # implementations exactly: the C path is taken only where the reference
    # stays on an exact uint64 strategy (direct product, Mersenne limb
    # split, or the in-domain Barrett float path — all of which agree with
    # the exact C arithmetic bit for bit).  Everywhere else the reference
    # switches representation (object arrays of Python ints) or leaves its
    # exactness envelope, so the wrapper delegates to keep outputs — values
    # *and* dtypes — identical across backends.

    @staticmethod
    def _mulmod_stays_word(multiplier: int, prime: int, key_bound: int) -> bool:
        key_bits = max(key_bound - 1, 1).bit_length()
        if (multiplier * max(key_bound - 1, 1)).bit_length() <= 64:
            return True
        exponent = _MERSENNE_EXPONENTS.get(prime)
        if exponent is not None and key_bits <= 64 - (exponent // 2 + 1):
            return True
        return prime < (1 << 62) and key_bits <= 32

    @staticmethod
    def _mulmod_arrays_stays_word(prime: int, right_bound: int) -> bool:
        if prime * max(right_bound - 1, 1) < (1 << 64):
            return True
        exponent = _MERSENNE_EXPONENTS.get(prime)
        if exponent is not None:
            if max(right_bound - 1, 1).bit_length() <= 63 - exponent // 2:
                return True
        # The reference's Barrett float path is exact (and equal to the C
        # result) only with both factors inside the field.
        return prime < (1 << 52) and right_bound <= prime

    @staticmethod
    def _as_u64(array: "np.ndarray") -> "np.ndarray":
        return np.ascontiguousarray(array, dtype=np.uint64)

    @staticmethod
    def _as_i64(array: "np.ndarray") -> "np.ndarray":
        return np.ascontiguousarray(array, dtype=np.int64)

    @staticmethod
    def _range_flags(range_size: int):
        """Return the (range, is_pow2) pair the C kernels expect.

        ``range == 0`` encodes "no reduction" (ranges of at least ``2^64``
        leave 64-bit values untouched, as in the reference ``mod_range``).
        """
        if range_size >= (1 << 64):
            return 0, 0
        return range_size, 1 if range_size & (range_size - 1) == 0 else 0

    # -- batched modular arithmetic --------------------------------------------------

    def mulmod(self, multiplier, keys, prime, key_bound):
        if (
            keys.dtype == object
            or prime >= (1 << 64)
            or not self._mulmod_stays_word(multiplier, prime, key_bound)
        ):
            return _ref.mulmod(multiplier, keys, prime, key_bound)
        keys = self._as_u64(keys)
        out = np.empty(keys.shape, dtype=np.uint64)
        self._lib.repro_mulmod(
            ctypes.c_uint64(multiplier),
            _ptr(keys),
            ctypes.c_int64(keys.size),
            ctypes.c_uint64(prime),
            ctypes.c_int(self._mersenne(prime)),
            _ptr(out),
        )
        return out

    def affine_mod(self, multiplier, offset, keys, prime, key_bound):
        # The reference returns object arrays for primes >= 2^63; mirror
        # that domain so downstream dtype branches behave identically.
        if (
            keys.dtype == object
            or prime >= (1 << 63)
            or not self._mulmod_stays_word(multiplier, prime, key_bound)
        ):
            return _ref.affine_mod(multiplier, offset, keys, prime, key_bound)
        keys = self._as_u64(keys)
        out = np.empty(keys.shape, dtype=np.uint64)
        self._lib.repro_affine_mod(
            ctypes.c_uint64(multiplier),
            ctypes.c_uint64(offset),
            _ptr(keys),
            ctypes.c_int64(keys.size),
            ctypes.c_uint64(prime),
            ctypes.c_int(self._mersenne(prime)),
            _ptr(out),
        )
        return out

    def affine_mod_range(self, multiplier, offset, keys, prime, key_bound, range_size):
        if (
            keys.dtype == object
            or prime >= (1 << 63)
            or not self._mulmod_stays_word(multiplier, prime, key_bound)
        ):
            return _ref.affine_mod_range(
                multiplier, offset, keys, prime, key_bound, range_size
            )
        keys = self._as_u64(keys)
        out = np.empty(keys.shape, dtype=np.uint64)
        range_value, range_pow2 = self._range_flags(range_size)
        self._lib.repro_affine_mod_range(
            ctypes.c_uint64(multiplier),
            ctypes.c_uint64(offset),
            _ptr(keys),
            ctypes.c_int64(keys.size),
            ctypes.c_uint64(prime),
            ctypes.c_int(self._mersenne(prime)),
            ctypes.c_uint64(range_value),
            ctypes.c_int(range_pow2),
            _ptr(out),
        )
        return out

    def mod_range(self, values, range_size):
        if values.dtype == object:
            return _ref.mod_range(values, range_size)
        if range_size >= (1 << 64):
            return values
        values = self._as_u64(values)
        out = np.empty(values.shape, dtype=np.uint64)
        range_value, range_pow2 = self._range_flags(range_size)
        self._lib.repro_mod_range(
            _ptr(values),
            ctypes.c_int64(values.size),
            ctypes.c_uint64(range_value),
            ctypes.c_int(range_pow2),
            _ptr(out),
        )
        return out

    def mulmod_arrays(self, left, right, prime, right_bound):
        if (
            left.dtype == object
            or right.dtype == object
            or prime >= (1 << 64)
            or not self._mulmod_arrays_stays_word(prime, right_bound)
        ):
            return _ref.mulmod_arrays(left, right, prime, right_bound)
        left = self._as_u64(left)
        right = self._as_u64(right)
        out = np.empty(left.shape, dtype=np.uint64)
        self._lib.repro_mulmod_arrays(
            _ptr(left),
            _ptr(right),
            ctypes.c_int64(left.size),
            ctypes.c_uint64(prime),
            ctypes.c_int(self._mersenne(prime)),
            _ptr(out),
        )
        return out

    def kwise_mod_range(self, coefficients, keys, prime, key_bound, range_size):
        coefficients = list(coefficients)
        if (
            keys.dtype == object
            or prime >= (1 << 63)
            or (
                len(coefficients) > 1
                and not self._mulmod_arrays_stays_word(prime, key_bound)
            )
        ):
            return _ref.kwise_mod_range(
                coefficients, keys, prime, key_bound, range_size
            )
        keys = self._as_u64(keys)
        coeffs = np.asarray(coefficients, dtype=np.uint64)
        out = np.empty(keys.shape, dtype=np.uint64)
        range_value, range_pow2 = self._range_flags(range_size)
        self._lib.repro_kwise_mod_range(
            _ptr(coeffs),
            ctypes.c_int64(coeffs.size),
            _ptr(keys),
            ctypes.c_int64(keys.size),
            ctypes.c_uint64(prime),
            ctypes.c_int(self._mersenne(prime)),
            ctypes.c_uint64(range_value),
            ctypes.c_int(range_pow2),
            _ptr(out),
        )
        return out

    # -- grouped scatter reductions --------------------------------------------------

    def grouped_residue_sums(self, group_index, group_count, residues, prime):
        if residues.dtype == object:
            return _ref.grouped_residue_sums(
                group_index, group_count, residues, prime
            )
        group_index = self._as_i64(group_index)
        residues = self._as_u64(residues)
        low = np.zeros(group_count, dtype=np.uint64)
        high = np.zeros(group_count, dtype=np.uint64)
        self._lib.repro_grouped_residue_sums(
            _ptr(group_index),
            ctypes.c_int64(group_index.size),
            _ptr(residues),
            _ptr(low),
            _ptr(high),
        )
        totals = low.tolist()  # uint64 tolist() yields Python ints
        for group in np.flatnonzero(high).tolist():
            totals[group] |= int(high[group]) << 64
        return totals

    def grouped_max_scatter(self, target, indices, values):
        suffix = _MAX_SCATTER_SUFFIXES.get(target.dtype.name)
        if (
            suffix is None
            or not target.flags.c_contiguous
            or len(indices) == 0
            or values.dtype.kind not in ("i", "u", "b")
            or (
                values.dtype.kind == "u"
                and values.dtype.itemsize == 8
                and int(values.max()) > _I64_MAX
            )
        ):
            return _ref.grouped_max_scatter(target, indices, values)
        indices = self._as_i64(indices)
        values = self._as_i64(values)
        getattr(self._lib, "repro_grouped_max_scatter_%s" % suffix)(
            _ptr(target),
            _ptr(indices),
            _ptr(values),
            ctypes.c_int64(indices.size),
        )
        return None

    def grouped_or_scatter(self, target, indices, masks):
        if (
            target.dtype != np.uint8
            or not target.flags.c_contiguous
            or len(indices) == 0
        ):
            return _ref.grouped_or_scatter(target, indices, masks)
        indices = self._as_i64(indices)
        masks = np.ascontiguousarray(masks, dtype=np.uint8)
        self._lib.repro_grouped_or_scatter_u8(
            _ptr(target),
            _ptr(indices),
            _ptr(masks),
            ctypes.c_int64(indices.size),
        )
        return None

    # -- vectorized word primitives --------------------------------------------------

    def lsb64_batch(self, values, zero_value):
        values = self._as_u64(values)
        out = np.empty(values.shape, dtype=np.int64)
        self._lib.repro_lsb64_batch(
            _ptr(values),
            ctypes.c_int64(values.size),
            ctypes.c_int64(zero_value),
            _ptr(out),
        )
        return out


def _self_test(backend: CompiledKernels) -> None:
    """Cross-check every kernel against the reference on fixed samples.

    Runs once at load time (sub-millisecond at these sizes).  A mismatch —
    a miscompiling toolchain, a stale cached library — refuses the backend
    rather than let it corrupt sketch state bit-for-bit silently.
    """
    rng = np.random.default_rng(0xC0DE)
    words = rng.integers(0, _U64_MAX, size=64, dtype=np.uint64)
    words[:4] = [0, 1, _I64_MAX, _U64_MAX]
    for prime in ((1 << 31) - 1, (1 << 61) - 1, 1_000_003):
        # Keys drawn from the universe the hash families actually pair with
        # each field prime (so the reference stays on its exact word paths
        # and the comparison exercises the C kernels, not the delegation).
        key_bound = min(prime, 1 << 32)
        keys = words % np.uint64(key_bound)
        field = words % np.uint64(prime)
        a = int(prime - 2)
        b = int(prime // 3)
        checks = [
            (backend.mulmod(a, keys, prime, key_bound),
             _ref.mulmod(a, keys, prime, key_bound)),
            (backend.affine_mod(a, b, keys, prime, key_bound),
             _ref.affine_mod(a, b, keys, prime, key_bound)),
            (backend.affine_mod_range(a, b, keys, prime, key_bound, 1 << 10),
             _ref.affine_mod_range(a, b, keys, prime, key_bound, 1 << 10)),
            (backend.kwise_mod_range([3, 1, a], keys, prime, key_bound, 1000),
             _ref.kwise_mod_range([3, 1, a], keys, prime, key_bound, 1000)),
            (backend.mulmod_arrays(field, keys, prime, key_bound),
             _ref.mulmod_arrays(field, keys, prime, key_bound)),
            (backend.mod_range(words, 1000), _ref.mod_range(words, 1000)),
            (backend.lsb64_batch(words, 64), _ref.lsb64_batch(words, 64)),
        ]
        for got, expected in checks:
            if got.dtype != expected.dtype or got.tolist() != expected.tolist():
                raise KernelBackendError(
                    "compiled kernel self-test failed for prime %d; refusing "
                    "the backend (set REPRO_KERNEL_BACKEND=numpy)" % prime
                )
    index = rng.integers(0, 8, size=64).astype(np.int64)
    residues = words % np.uint64((1 << 61) - 1)
    if backend.grouped_residue_sums(
        index, 8, residues, (1 << 61) - 1
    ) != _ref.grouped_residue_sums(index, 8, residues, (1 << 61) - 1):
        raise KernelBackendError("compiled grouped_residue_sums self-test failed")
    mine, reference = np.zeros(8, dtype=np.uint8), np.zeros(8, dtype=np.uint8)
    values = rng.integers(0, 200, size=64).astype(np.int64)
    backend.grouped_max_scatter(mine, index, values)
    _ref.grouped_max_scatter(reference, index, values)
    masks = (1 << (values & 7)).astype(np.uint8)
    mine_or, ref_or = np.zeros(8, dtype=np.uint8), np.zeros(8, dtype=np.uint8)
    backend.grouped_or_scatter(mine_or, index, masks)
    _ref.grouped_or_scatter(ref_or, index, masks)
    if mine.tolist() != reference.tolist() or mine_or.tolist() != ref_or.tolist():
        raise KernelBackendError("compiled scatter self-test failed")


def load() -> CompiledKernels:
    """Build (once), load, verify, and return the compiled backend.

    Raises:
        KernelBackendError: when no C compiler is available, the build
            fails, or the built library does not match the reference
            bit-for-bit on the self-test samples.
    """
    library = _build_library()
    backend = CompiledKernels(library, _find_compiler())
    _self_test(backend)
    return backend
