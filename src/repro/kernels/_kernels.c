/* Fused single-pass kernels behind the repro vectorize seam.
 *
 * This file is compiled on first use by repro.kernels.compiled_backend
 * (plain `cc -O3 -shared -fPIC`, loaded through ctypes) — it has no
 * Python.h or NumPy dependency, so the build needs nothing beyond a C
 * compiler with 128-bit integer support (gcc/clang on any 64-bit target).
 *
 * Contract: every kernel is EXACT and must produce bit-identical results
 * to the NumPy reference backend (repro.kernels.numpy_backend) on its
 * supported input domain; the Python wrappers delegate out-of-domain
 * inputs (object dtypes, moduli >= 2^63/2^64) back to the reference.
 * Arithmetic rides on unsigned __int128 products; the Mersenne moduli
 * (2^31 - 1, 2^61 - 1 — the field primes the library actually draws)
 * reduce with division-free folds, everything else pays one 128-by-64
 * division per element.
 */

#include <stdint.h>

typedef unsigned __int128 u128;
typedef uint64_t u64;
typedef int64_t i64;
typedef uint8_t u8;

#define EXPORT __attribute__((visibility("default")))

/* ABI version checked by the loader; bump when a signature changes. */
EXPORT int repro_kernels_abi(void) { return 1; }

/* Reduce x modulo p.  For a Mersenne prime p = 2^mers - 1 the identity
 * 2^mers = 1 (mod p) folds the high bits down without dividing; at most
 * three folds reach x <= p for any x < 2^128.  mers == 0 selects the
 * generic 128-by-64 division. */
static inline u64 mod_u128(u128 x, u64 p, unsigned mers) {
    if (mers) {
        u128 mask = ((u128)1 << mers) - 1;
        while (x >> mers)
            x = (x & mask) + (x >> mers);
        u64 r = (u64)x;
        return r == p ? 0 : r;
    }
    return (u64)(x % p);
}

/* (multiplier * keys[i]) % p — the mulmod kernel. */
EXPORT void repro_mulmod(u64 multiplier, const u64 *keys, i64 n, u64 p,
                         int mers, u64 *out) {
    for (i64 i = 0; i < n; i++)
        out[i] = mod_u128((u128)multiplier * keys[i], p, mers);
}

/* ((a * keys[i] + b) % p) — the affine_mod kernel (a, b < p < 2^63). */
EXPORT void repro_affine_mod(u64 a, u64 b, const u64 *keys, i64 n, u64 p,
                             int mers, u64 *out) {
    for (i64 i = 0; i < n; i++) {
        u64 r = mod_u128((u128)a * keys[i], p, mers);
        r += b; /* r < p < 2^63 and b < p, so no overflow */
        if (r >= p)
            r -= p;
        out[i] = r;
    }
}

/* Fused Carter--Wegman chain: ((a*k + b) % p) % range in one pass.
 * range_pow2 != 0 selects a mask; range == 0 means "no range reduction"
 * (the caller's range does not fit 64 bits, so values pass through). */
EXPORT void repro_affine_mod_range(u64 a, u64 b, const u64 *keys, i64 n,
                                   u64 p, int mers, u64 range,
                                   int range_pow2, u64 *out) {
    for (i64 i = 0; i < n; i++) {
        u64 r = mod_u128((u128)a * keys[i], p, mers);
        r += b;
        if (r >= p)
            r -= p;
        if (range_pow2)
            r &= range - 1;
        else if (range)
            r %= range;
        out[i] = r;
    }
}

/* values[i] % range (range < 2^64; power-of-two ranges mask). */
EXPORT void repro_mod_range(const u64 *values, i64 n, u64 range,
                            int range_pow2, u64 *out) {
    if (range_pow2) {
        u64 mask = range - 1;
        for (i64 i = 0; i < n; i++)
            out[i] = values[i] & mask;
    } else {
        for (i64 i = 0; i < n; i++)
            out[i] = values[i] % range;
    }
}

/* (left[i] * right[i]) % p for left < p < 2^64, right < 2^64. */
EXPORT void repro_mulmod_arrays(const u64 *left, const u64 *right, i64 n,
                                u64 p, int mers, u64 *out) {
    for (i64 i = 0; i < n; i++)
        out[i] = mod_u128((u128)left[i] * right[i], p, mers);
}

/* Fused k-wise polynomial hash: Horner over k coefficients (low degree
 * first, all < p < 2^63) then one range reduction — the entire
 * KWiseHash.hash_batch chain in a single pass per key. */
EXPORT void repro_kwise_mod_range(const u64 *coeffs, i64 k, const u64 *keys,
                                  i64 n, u64 p, int mers, u64 range,
                                  int range_pow2, u64 *out) {
    for (i64 i = 0; i < n; i++) {
        u64 key = keys[i];
        u64 acc = coeffs[k - 1];
        for (i64 j = k - 2; j >= 0; j--)
            acc = mod_u128((u128)acc * key + coeffs[j], p, mers);
        if (range_pow2)
            acc &= range - 1;
        else if (range)
            acc %= range;
        out[i] = acc;
    }
}

/* Exact per-group sums of u64 residues with 128-bit accumulators split
 * into (lo, hi) word arrays — the turnstile scatter-accumulate core with
 * no split-32-bit passes and no intermediate arrays. */
EXPORT void repro_grouped_residue_sums(const i64 *group_index, i64 n,
                                       const u64 *residues, u64 *lo,
                                       u64 *hi) {
    for (i64 i = 0; i < n; i++) {
        i64 g = group_index[i];
        u64 before = lo[g];
        u64 after = before + residues[i];
        hi[g] += (after < before); /* carry into the high word */
        lo[g] = after;
    }
}

/* target[idx] = max(target[idx], value) scatter, one linear pass (the
 * NumPy reference pays an argsort + reduceat).  Values arrive as int64
 * and are cast to the target dtype; the seam contract requires them to
 * fit, so the cast is value-preserving and cast-then-max equals
 * max-then-cast. */
#define DEFINE_MAX_SCATTER(SUFFIX, T)                                        \
    EXPORT void repro_grouped_max_scatter_##SUFFIX(                          \
        T *target, const i64 *indices, const i64 *values, i64 n) {           \
        for (i64 i = 0; i < n; i++) {                                        \
            T v = (T)values[i];                                              \
            i64 t = indices[i];                                              \
            if (target[t] < v)                                               \
                target[t] = v;                                               \
        }                                                                    \
    }

DEFINE_MAX_SCATTER(u8, uint8_t)
DEFINE_MAX_SCATTER(u16, uint16_t)
DEFINE_MAX_SCATTER(u32, uint32_t)
DEFINE_MAX_SCATTER(u64, uint64_t)
DEFINE_MAX_SCATTER(i8, int8_t)
DEFINE_MAX_SCATTER(i16, int16_t)
DEFINE_MAX_SCATTER(i32, int32_t)
DEFINE_MAX_SCATTER(i64, int64_t)

/* target[idx] |= mask scatter over a byte buffer (bit-plane updates). */
EXPORT void repro_grouped_or_scatter_u8(u8 *target, const i64 *indices,
                                        const u8 *masks, i64 n) {
    for (i64 i = 0; i < n; i++)
        target[indices[i]] |= masks[i];
}

/* Least-significant-set-bit of each word; zeros map to zero_value (the
 * paper's lsb(0) = log n sentinel). */
EXPORT void repro_lsb64_batch(const u64 *values, i64 n, i64 zero_value,
                              i64 *out) {
    for (i64 i = 0; i < n; i++) {
        u64 v = values[i];
        out[i] = v ? (i64)__builtin_ctzll(v) : zero_value;
    }
}
