"""Prime-number utilities for finite-field hashing and fingerprinting.

Several components of the reproduction need primes:

* The Carter--Wegman k-wise independent families (``kwise.py``) evaluate a
  random degree-(k-1) polynomial over a prime field ``F_p`` with ``p``
  larger than the key universe.
* The L0 fingerprint counters of Lemma 6 choose a *random* prime
  ``p in [D, D^3]`` with ``D = 100 K log(mM)`` so that non-zero frequencies
  stay non-zero modulo ``p`` with high probability.
* The exact small-L0 recovery of Lemma 8 hashes counters modulo a random
  prime of magnitude ``Theta(log(mM) log log(mM))``.

Primality testing is deterministic Miller--Rabin (valid for every integer
below 3.3 * 10^24 with the fixed witness set used here), which is far more
than the library ever needs.
"""

from __future__ import annotations

import random

from .entropy import fresh_rng
from typing import Iterator, Optional, Sequence

from ..exceptions import ParameterError

__all__ = [
    "is_prime",
    "next_prime",
    "prev_prime",
    "random_prime",
    "primes_in_range",
    "MERSENNE_61",
    "MERSENNE_31",
]

#: The Mersenne prime 2^61 - 1.  Polynomial hashing modulo a Mersenne prime
#: admits a fast reduction and comfortably covers 32-bit key universes.
MERSENNE_61 = (1 << 61) - 1

#: The Mersenne prime 2^31 - 1, used when a smaller field suffices.
MERSENNE_31 = (1 << 31) - 1

# Deterministic Miller-Rabin witness set: correct for all n < 3.3 * 10^24.
_MILLER_RABIN_WITNESSES: Sequence[int] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37,
)

_SMALL_PRIMES: Sequence[int] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97,
)


def _miller_rabin_witness(n: int, a: int) -> bool:
    """Return True when ``a`` witnesses that ``n`` is composite."""
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    x = pow(a, d, n)
    if x in (1, n - 1):
        return False
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def is_prime(n: int) -> bool:
    """Return True when ``n`` is prime.

    Deterministic for every ``n`` the library can produce (witness set is
    exact below 3.3e24).
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    for a in _MILLER_RABIN_WITNESSES:
        if a >= n:
            continue
        if _miller_rabin_witness(n, a):
            return False
    return True


def next_prime(n: int) -> int:
    """Return the smallest prime strictly greater than ``n``."""
    candidate = max(n + 1, 2)
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


def prev_prime(n: int) -> int:
    """Return the largest prime strictly smaller than ``n``.

    Raises:
        ParameterError: if no prime below ``n`` exists (``n <= 2``).
    """
    if n <= 2:
        raise ParameterError("there is no prime below 2")
    candidate = n - 1
    if candidate == 2:
        return 2
    if candidate % 2 == 0:
        candidate -= 1
    while candidate >= 2 and not is_prime(candidate):
        candidate -= 2
    if candidate < 2:
        raise ParameterError("there is no prime below %d" % n)
    return candidate


def random_prime(low: int, high: int, rng: Optional[random.Random] = None) -> int:
    """Return a prime chosen uniformly-ish at random from ``[low, high]``.

    The sampling strategy matches what Lemma 6 needs: pick a random point
    in the interval and walk upward to the next prime (wrapping to ``low``
    if the walk overshoots).  The resulting distribution is not exactly
    uniform over primes, but every prime in the range has probability
    proportional to its preceding prime gap, which suffices for the
    union-bound arguments in the paper (they only need that the prime is
    "random enough" to avoid dividing a fixed set of non-zero frequencies).

    Args:
        low: inclusive lower bound (must be >= 2).
        high: inclusive upper bound (must be >= low and contain a prime).
        rng: source of randomness; a fresh ``random.Random()`` when omitted.

    Raises:
        ParameterError: when the interval is malformed or contains no prime.
    """
    if low < 2:
        raise ParameterError("random_prime lower bound must be at least 2")
    if high < low:
        raise ParameterError("random_prime upper bound below lower bound")
    rng = fresh_rng(rng)
    start = rng.randint(low, high)
    candidate = next_prime(start - 1)
    if candidate > high:
        candidate = next_prime(low - 1)
    if candidate > high:
        raise ParameterError(
            "no prime exists in the interval [%d, %d]" % (low, high)
        )
    return candidate


def primes_in_range(low: int, high: int, limit: Optional[int] = None) -> Iterator[int]:
    """Yield primes in ``[low, high]`` in increasing order.

    Args:
        low: inclusive lower bound.
        high: inclusive upper bound.
        limit: stop after yielding this many primes (``None`` for all).
    """
    count = 0
    candidate = max(low, 2)
    if candidate == 2:
        if 2 <= high:
            yield 2
            count += 1
            if limit is not None and count >= limit:
                return
        candidate = 3
    elif candidate % 2 == 0:
        candidate += 1
    while candidate <= high:
        if is_prime(candidate):
            yield candidate
            count += 1
            if limit is not None and count >= limit:
                return
        candidate += 2


def field_prime_for_universe(universe_size: int) -> int:
    """Return a prime suitable as a field modulus for keys in ``[0, universe_size)``.

    Prefers the Mersenne primes (fast modular reduction) when they are large
    enough, otherwise takes the next prime above the universe size.
    """
    if universe_size <= 0:
        raise ParameterError("universe size must be positive")
    if universe_size <= MERSENNE_31:
        return MERSENNE_31 if universe_size > (1 << 20) else next_prime(universe_size)
    if universe_size <= MERSENNE_61:
        return MERSENNE_61
    return next_prime(universe_size)
