"""Word-level bit operations used throughout the KNW algorithms.

The paper relies on two machine-word primitives (its Theorem 5, citing
Brodnik and Fredman--Willard): computing the *least* and *most* significant
set bit of a word in constant time.  Python integers are arbitrary
precision, so "constant time" is a modelling statement rather than a
hardware guarantee here; this module nevertheless implements the classic
word-RAM techniques (de Bruijn multiplication for ``lsb`` and a
byte-lookup-table ladder for ``msb``) so that the *algorithmic structure*
of the paper's constant-time claims is preserved, and so the operation
count per stream update does not depend on ``n`` or ``eps``.

Conventions (matching Section 1.2 of the paper):

* ``lsb(x)`` is the 0-based index of the least significant set bit of a
  non-negative integer ``x``.  The paper defines ``lsb(0) = log(n)``; since
  this module is universe-agnostic the caller supplies that sentinel via
  the ``zero_value`` argument (the estimators pass ``log2(n)``).
* ``msb(x)`` is the 0-based index of the most significant set bit, i.e.
  ``floor(log2(x))`` for ``x > 0``.
"""

from __future__ import annotations

from ..exceptions import ParameterError
from ..vectorize import lsb64_batch, np, require_numpy

__all__ = [
    "WORD_SIZE",
    "lsb",
    "msb",
    "lsb64",
    "msb64",
    "lsb_batch",
    "rho_batch",
    "ceil_log2",
    "floor_log2",
    "is_power_of_two",
    "reverse_bits",
    "popcount",
]

#: Machine-word size assumed by the word-RAM model of the paper.  The paper
#: assumes a word of Omega(log(n m M)) bits; 64 covers every configuration
#: this library instantiates.
WORD_SIZE = 64

_WORD_MASK = (1 << WORD_SIZE) - 1

# --------------------------------------------------------------------------
# de Bruijn sequence based least-significant-bit computation (Brodnik-style).
# --------------------------------------------------------------------------
# A 64-bit de Bruijn sequence B(2, 6): every 6-bit window of the cyclic
# sequence is distinct, so ``(x & -x) * _DEBRUIJN64 >> 58`` indexes uniquely
# into a 64-entry table keyed by the position of the isolated low bit.
_DEBRUIJN64 = 0x03F79D71B4CB0A89

_DEBRUIJN64_TABLE = [0] * 64
for _i in range(64):
    _DEBRUIJN64_TABLE[((1 << _i) * _DEBRUIJN64 & _WORD_MASK) >> 58] = _i

# --------------------------------------------------------------------------
# Byte-lookup ladder for most-significant-bit computation.
# --------------------------------------------------------------------------
_MSB_BYTE_TABLE = [0] * 256
for _i in range(1, 256):
    _MSB_BYTE_TABLE[_i] = 1 + _MSB_BYTE_TABLE[_i >> 1]
# _MSB_BYTE_TABLE[b] is now 1 + floor(log2(b)) for b >= 1, 0 for b == 0.


def lsb64(x: int) -> int:
    """Return the index of the least significant set bit of a 64-bit word.

    Implements the de Bruijn multiplication technique in the spirit of
    Brodnik's constant-time lsb computation (paper Theorem 5).

    Args:
        x: an integer with ``0 < x < 2**64``.

    Raises:
        ParameterError: if ``x`` is zero or does not fit in 64 bits.
    """
    if x <= 0:
        raise ParameterError("lsb64 requires a positive integer")
    if x > _WORD_MASK:
        raise ParameterError("lsb64 operand does not fit in a 64-bit word")
    isolated = x & -x
    return _DEBRUIJN64_TABLE[(isolated * _DEBRUIJN64 & _WORD_MASK) >> 58]


def msb64(x: int) -> int:
    """Return the index of the most significant set bit of a 64-bit word.

    Uses a constant number of byte-table lookups (the Fredman--Willard
    style word-RAM technique referenced by the paper's Theorem 5).

    Args:
        x: an integer with ``0 < x < 2**64``.

    Raises:
        ParameterError: if ``x`` is zero or does not fit in 64 bits.
    """
    if x <= 0:
        raise ParameterError("msb64 requires a positive integer")
    if x > _WORD_MASK:
        raise ParameterError("msb64 operand does not fit in a 64-bit word")
    result = 0
    shifted = x
    # A constant (8) number of iterations: examine one byte at a time from
    # the top.  Each iteration is O(1); the loop length never depends on x.
    for byte_index in range(7, -1, -1):
        byte = (shifted >> (8 * byte_index)) & 0xFF
        if byte:
            result = 8 * byte_index + _MSB_BYTE_TABLE[byte] - 1
            break
    return result


def lsb(x: int, zero_value: int | None = None) -> int:
    """Return the 0-based index of the least significant set bit of ``x``.

    This is the general-width version used by the estimators: item
    identifiers hashed into ``[0, n)`` always fit in a word for the
    configurations this library supports, but the function remains correct
    for arbitrarily large Python integers.

    Args:
        x: a non-negative integer.
        zero_value: value to return when ``x == 0``.  The paper defines
            ``lsb(0) = log(n)``; estimators pass their ``log2(n)``.  When
            ``None`` (the default) a zero input raises ``ParameterError``.

    Returns:
        The index of the lowest set bit, or ``zero_value`` for ``x == 0``.
    """
    if x < 0:
        raise ParameterError("lsb is defined for non-negative integers only")
    if x == 0:
        if zero_value is None:
            raise ParameterError("lsb(0) requires an explicit zero_value")
        return zero_value
    if x <= _WORD_MASK:
        return lsb64(x)
    return (x & -x).bit_length() - 1


def msb(x: int) -> int:
    """Return the 0-based index of the most significant set bit of ``x``.

    Equivalent to ``floor(log2(x))`` for positive ``x``.
    """
    if x <= 0:
        raise ParameterError("msb requires a positive integer")
    if x <= _WORD_MASK:
        return msb64(x)
    return x.bit_length() - 1


def lsb_batch(values, zero_value: int):
    """Vectorized :func:`lsb` over a ``uint64`` NumPy array.

    This is the batch-ingestion counterpart of the per-item ``lsb``: one
    de Bruijn multiplication and one table gather for the whole array,
    instead of one Python call per item.  Inputs must fit in 64-bit words
    (every hash range the estimators subsample on does).

    Args:
        values: ``uint64`` ndarray of hash values (an object-dtype array
            of Python ints — hashes over universes beyond ``2^61`` — is
            handled exactly via the scalar ``lsb``).
        zero_value: value assigned to zero entries (the paper's
            ``lsb(0) = log n`` sentinel; estimators pass ``log2(n)``).

    Returns:
        An ``int64`` ndarray of bit indices.
    """
    require_numpy("lsb_batch")
    if values.dtype == object:
        return np.array(
            [lsb(int(value), zero_value=zero_value) for value in values.tolist()],
            dtype=np.int64,
        )
    return lsb64_batch(values, zero_value)


def rho_batch(values, zero_value: int):
    """Vectorized ``rho`` (1 + lsb) used by the register-based baselines.

    LogLog/HyperLogLog record ``rho = lsb + 1`` per item; providing the
    fused form keeps their ``update_batch`` overrides one-liners.
    """
    require_numpy("rho_batch")
    return lsb_batch(values, zero_value) + np.int64(1)


def floor_log2(x: int) -> int:
    """Return ``floor(log2(x))`` for a positive integer ``x``."""
    return msb(x)


def ceil_log2(x: int) -> int:
    """Return ``ceil(log2(x))`` for a positive integer ``x``.

    The paper's update step needs ``ceil(log(C + 2))`` to account for the
    bit-length of packed counters; that is a most-significant-bit
    computation, which is why this helper lives beside :func:`msb`.
    """
    if x <= 0:
        raise ParameterError("ceil_log2 requires a positive integer")
    below = msb(x)
    return below if x == (1 << below) else below + 1


def is_power_of_two(x: int) -> bool:
    """Return True when ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


def reverse_bits(x: int, width: int) -> int:
    """Return ``x`` with its lowest ``width`` bits reversed.

    Used by workload generators to produce streams whose identifiers have
    adversarial low-order-bit structure (stressing the ``lsb`` subsampling).
    """
    if x < 0:
        raise ParameterError("reverse_bits requires a non-negative integer")
    if width <= 0:
        raise ParameterError("reverse_bits requires a positive width")
    if x >= (1 << width):
        raise ParameterError("reverse_bits operand does not fit in width bits")
    result = 0
    for _ in range(width):
        result = (result << 1) | (x & 1)
        x >>= 1
    return result


def popcount(x: int) -> int:
    """Return the number of set bits in ``x`` (population count)."""
    if x < 0:
        raise ParameterError("popcount requires a non-negative integer")
    return bin(x).count("1")
