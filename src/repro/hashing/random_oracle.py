"""Random-oracle (truly random hash function) simulation.

Several prior algorithms listed in the paper's Figure 1 — Flajolet--Martin
(1985), Durand--Flajolet LogLog, Flajolet et al. HyperLogLog, and the
Estan--Varghese--Fisk bitmap schemes — are analysed under the assumption of
access to a *truly random* hash function (a random oracle).  One of the
contributions of KNW is removing that assumption, so the reproduction must
keep the distinction visible: the baselines that need a random oracle draw
it from this module, and their space accounting explicitly excludes the
(information-theoretically unaffordable) cost of storing it, mirroring how
those papers account for space.

The oracle is realised as a strong 64-bit mixing function (splitmix64)
keyed by a per-oracle seed.  For the purposes of this library — simulating
idealised hashing for baselines whose inputs are not adversarial to the
mixer — its output is statistically indistinguishable from a uniform
random function, evaluates in O(1), and two oracles with equal seeds agree
on every key (which is what lets oracle-model sketches be merged).
"""

from __future__ import annotations

from .entropy import fresh_seed
from typing import Optional

from ..exceptions import ParameterError
from ..vectorize import as_key_array, np

__all__ = ["RandomOracle"]

_MASK64 = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    """One round of the splitmix64 finaliser (a high-quality 64-bit mixer)."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


class RandomOracle:
    """A simulated truly random function ``[u] -> [v]``.

    Attributes:
        universe_size: size of the key domain ``[0, u)``.
        range_size: size of the output range ``[0, v)``.
        seed: the oracle's identity; equal seeds give identical functions.
    """

    __slots__ = ("universe_size", "range_size", "seed")

    def __init__(
        self,
        universe_size: int,
        range_size: int,
        seed: Optional[int] = None,
    ) -> None:
        """Create the oracle.

        Args:
            universe_size: size of the key domain; must be positive.
            range_size: size of the output range; must be positive.
            seed: oracle identity.  When ``None`` a random identity is
                drawn, so two independently created oracles are independent
                random functions.
        """
        if universe_size <= 0:
            raise ParameterError("universe_size must be positive")
        if range_size <= 0:
            raise ParameterError("range_size must be positive")
        self.universe_size = universe_size
        self.range_size = range_size
        self.seed = seed if seed is not None else fresh_seed()

    def __call__(self, key: int) -> int:
        """Evaluate the oracle on ``key``."""
        if not 0 <= key < self.universe_size:
            raise ParameterError(
                "key %d outside universe [0, %d)" % (key, self.universe_size)
            )
        mixed = _splitmix64(_splitmix64(self.seed & _MASK64) ^ (key & _MASK64))
        if self.range_size.bit_count() == 1:
            return mixed & (self.range_size - 1)
        return mixed % self.range_size

    def hash_batch(self, keys):
        """Evaluate the oracle on a whole array of keys at once.

        The splitmix64 finaliser is three multiply/xor-shift rounds, all of
        which vectorize exactly over ``uint64`` (NumPy's unsigned overflow
        *is* the wraparound the mixer is defined on), so batch evaluation
        is bit-identical to :meth:`__call__` per key.

        Args:
            keys: integer sequence or ndarray with values in
                ``[0, universe_size)``.

        Returns:
            A ``uint64`` ndarray of oracle values in ``[0, range_size)``.
        """
        keys = as_key_array(keys, self.universe_size)
        return self.hash_batch_validated(keys)

    def hash_batch_validated(self, keys):
        """:meth:`hash_batch` for a key array the caller already validated."""
        if keys.dtype == object:
            # Universes beyond 2^64: the scalar path masks keys to the
            # 64-bit word before mixing; do the same, exactly.
            keys = np.fromiter(
                (key & _MASK64 for key in keys.tolist()),
                dtype=np.uint64,
                count=len(keys),
            )
        value = np.uint64(_splitmix64(self.seed & _MASK64)) ^ keys
        value = value + np.uint64(0x9E3779B97F4A7C15)
        value = (value ^ (value >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        value = (value ^ (value >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        mixed = value ^ (value >> np.uint64(31))
        if self.range_size.bit_count() == 1:
            if self.range_size >= (1 << 64):
                return mixed  # a 64-bit mix is already inside the range
            return mixed & np.uint64(self.range_size - 1)
        if self.range_size >= (1 << 64):
            return mixed
        return mixed % np.uint64(self.range_size)

    def space_bits(self) -> int:
        """Return the space charged for the oracle.

        Random-oracle-model analyses do not charge for storing the oracle
        (it is assumed to be available "for free"); we mirror that
        accounting and charge 0 bits, while the comparison tables flag
        these baselines as oracle-model so the asymmetry stays visible.
        """
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            "RandomOracle(universe_size=%d, range_size=%d, seed=%r)"
            % (self.universe_size, self.range_size, self.seed)
        )
