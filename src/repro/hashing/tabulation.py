"""Simple tabulation hashing.

Tabulation hashing splits a key into ``c`` characters and XORs together one
random table entry per character.  It is only 3-wise independent, but it
has much stronger concentration properties than its independence suggests
(Patrascu--Thorup), evaluates in a constant number of table lookups, and is
the natural "fast practical hash" to compare against the paper's
theoretically clean families in the ablation benchmarks (experiment E12 of
DESIGN.md).

It is *not* used inside the reference KNW implementation — the paper's
correctness analysis is stated for the Carter--Wegman / Pagh--Pagh / Siegel
families — but the fast variant (:mod:`repro.core.fast_knw`) can be
configured to use it, and the balls-and-bins benchmark measures how close
its occupancy statistics get to a truly random function.
"""

from __future__ import annotations

import random

from .entropy import fresh_rng
from typing import List, Optional

from ..exceptions import ParameterError
from .bitops import is_power_of_two

__all__ = ["TabulationHash"]


class TabulationHash:
    """Simple tabulation hashing from ``[2^key_bits]`` to ``[2^value_bits]``.

    Attributes:
        key_bits: bit-width of the key domain.
        value_bits: bit-width of the output range.
        character_bits: bit-width of each character (table index).
    """

    __slots__ = ("key_bits", "value_bits", "character_bits", "_tables", "_mask")

    def __init__(
        self,
        key_bits: int,
        value_bits: int,
        character_bits: int = 8,
        rng: Optional[random.Random] = None,
    ) -> None:
        """Draw a random tabulation hash.

        Args:
            key_bits: number of bits in the keys; must be positive.
            value_bits: number of bits in the output; must be positive.
            character_bits: bits per character; the key is split into
                ``ceil(key_bits / character_bits)`` characters.
            rng: source of randomness for the tables.
        """
        if key_bits <= 0 or value_bits <= 0:
            raise ParameterError("key_bits and value_bits must be positive")
        if character_bits <= 0:
            raise ParameterError("character_bits must be positive")
        rng = fresh_rng(rng)
        self.key_bits = key_bits
        self.value_bits = value_bits
        self.character_bits = character_bits
        characters = (key_bits + character_bits - 1) // character_bits
        table_size = 1 << character_bits
        self._mask = table_size - 1
        self._tables: List[List[int]] = [
            [rng.randrange(0, 1 << value_bits) for _ in range(table_size)]
            for _ in range(characters)
        ]

    @classmethod
    def for_universe(
        cls,
        universe_size: int,
        range_size: int,
        character_bits: int = 8,
        rng: Optional[random.Random] = None,
    ) -> "TabulationHash":
        """Build a tabulation hash for a power-of-two universe and range.

        Args:
            universe_size: size of the key domain; must be a power of two.
            range_size: size of the output range; must be a power of two.
            character_bits: bits per character.
            rng: source of randomness for the tables.
        """
        if not is_power_of_two(universe_size):
            raise ParameterError("tabulation universe must be a power of two")
        if not is_power_of_two(range_size):
            raise ParameterError("tabulation range must be a power of two")
        key_bits = max(universe_size.bit_length() - 1, 1)
        value_bits = max(range_size.bit_length() - 1, 1)
        return cls(key_bits, value_bits, character_bits=character_bits, rng=rng)

    def __call__(self, key: int) -> int:
        """Evaluate the hash on ``key`` (a ``key_bits``-bit integer)."""
        if key < 0 or key >= (1 << self.key_bits):
            raise ParameterError(
                "key %d outside universe [0, 2^%d)" % (key, self.key_bits)
            )
        value = 0
        for table in self._tables:
            value ^= table[key & self._mask]
            key >>= self.character_bits
        return value

    def space_bits(self) -> int:
        """Return the number of bits needed to store the lookup tables."""
        entries = sum(len(table) for table in self._tables)
        return entries * self.value_bits

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            "TabulationHash(key_bits=%d, value_bits=%d, character_bits=%d)"
            % (self.key_bits, self.value_bits, self.character_bits)
        )
