"""k-wise independent hash families (Carter--Wegman polynomials).

The main KNW algorithm (Figure 3) hashes surviving items into ``K = 1/eps^2``
counters with a hash function ``h3`` drawn from a k-wise independent family
for ``k = Theta(log(1/eps) / log log(1/eps))``.  The balls-and-bins analysis
of Section 2 (Lemmas 2 and 3) shows that this limited independence already
preserves the expectation and variance of the number of occupied bins well
enough for the ``(1 +/- eps)`` guarantee.

The textbook construction used here is a random polynomial of degree
``k - 1`` over a prime field evaluated at the key, reduced to the output
range.  Storage is ``k`` field elements (``O(k log(universe))`` bits) and
evaluation is ``O(k)`` field operations via Horner's rule; the
*time-optimal* variant of the paper replaces this with the Siegel /
Pagh--Pagh families provided in :mod:`repro.hashing.siegel` and
:mod:`repro.hashing.uniform`.
"""

from __future__ import annotations

import random

from .entropy import fresh_rng
from typing import List, Optional, Sequence

from ..exceptions import ParameterError
from ..vectorize import as_key_array, kwise_mod_range
from .primes import field_prime_for_universe

__all__ = ["KWiseHash", "required_independence"]


def required_independence(bins: int, eps: float) -> int:
    """Return the independence the paper's Lemma 2 asks of ``h3``.

    Lemma 2 requires a ``2(k+1)``-wise independent family with
    ``k = c * log(K/eps) / log log(K/eps)``.  The constant ``c`` is not made
    explicit in the paper; ``c = 1`` with a floor of 4 reproduces the
    asymptotic behaviour while keeping evaluation affordable, and the
    benchmarks in ``benchmarks/bench_balls_bins.py`` verify empirically that
    this independence already matches the fully random behaviour.

    Args:
        bins: the number of bins ``K``.
        eps: the target relative error.

    Returns:
        The number of independent evaluations the family must support
        (i.e. the ``2(k+1)`` of Lemma 2).
    """
    import math

    if bins <= 0:
        raise ParameterError("bins must be positive")
    if not 0 < eps < 1:
        raise ParameterError("eps must lie in (0, 1)")
    ratio = max(bins / eps, 4.0)
    k = max(4, int(math.ceil(math.log2(ratio) / max(math.log2(math.log2(ratio)), 1.0))))
    return 2 * (k + 1)


class KWiseHash:
    """A function drawn from a k-wise independent family ``[u] -> [v]``.

    The function is ``h(x) = (sum_j a_j x^j mod p) mod v`` for ``k`` random
    coefficients over a prime field with ``p >= u``.

    Attributes:
        universe_size: size ``u`` of the key domain.
        range_size: size ``v`` of the output range.
        independence: the ``k`` of the family.
    """

    __slots__ = ("universe_size", "range_size", "independence", "_prime", "_coefficients")

    def __init__(
        self,
        universe_size: int,
        range_size: int,
        independence: int,
        rng: Optional[random.Random] = None,
        coefficients: Optional[Sequence[int]] = None,
    ) -> None:
        """Draw a random member of the family.

        Args:
            universe_size: size of the key domain; must be positive.
            range_size: size of the output range; must be positive.
            independence: the ``k`` of the family; must be at least 1.
            rng: source of randomness used to pick the polynomial.
            coefficients: explicit polynomial coefficients (low degree
                first); intended for tests that need a reproducible
                function.  When supplied, ``rng`` is ignored.
        """
        if universe_size <= 0:
            raise ParameterError("universe_size must be positive")
        if range_size <= 0:
            raise ParameterError("range_size must be positive")
        if independence < 1:
            raise ParameterError("independence must be at least 1")
        self.universe_size = universe_size
        self.range_size = range_size
        self.independence = independence
        self._prime = field_prime_for_universe(max(universe_size, range_size))
        if coefficients is not None:
            coeffs = [c % self._prime for c in coefficients]
            if len(coeffs) != independence:
                raise ParameterError(
                    "expected %d coefficients, got %d" % (independence, len(coeffs))
                )
            self._coefficients: List[int] = coeffs
        else:
            rng = fresh_rng(rng)
            self._coefficients = [
                rng.randrange(0, self._prime) for _ in range(independence)
            ]
            # Guarantee the polynomial is non-constant for independence > 1 so
            # that degenerate all-zero draws (probability p^-(k-1), but fatal
            # for tests with tiny fields) cannot collapse the family.
            if independence > 1 and all(c == 0 for c in self._coefficients[1:]):
                self._coefficients[1] = rng.randrange(1, self._prime)

    def __call__(self, key: int) -> int:
        """Evaluate the hash function on ``key`` via Horner's rule."""
        if not 0 <= key < self.universe_size:
            raise ParameterError(
                "key %d outside universe [0, %d)" % (key, self.universe_size)
            )
        acc = 0
        p = self._prime
        for coefficient in reversed(self._coefficients):
            acc = (acc * key + coefficient) % p
        return acc % self.range_size

    def hash_batch(self, keys):
        """Evaluate the polynomial on a whole array of keys via Horner's rule.

        One fused seam kernel (:func:`repro.vectorize.kwise_mod_range`)
        replaces ``k`` Python field operations *per item*; the result is
        bit-identical to the scalar :meth:`__call__`.

        Args:
            keys: integer sequence or ndarray with values in
                ``[0, universe_size)``.

        Returns:
            ndarray of hash values in ``[0, range_size)``.
        """
        keys = as_key_array(keys, self.universe_size)
        return self.hash_batch_validated(keys)

    def hash_batch_validated(self, keys):
        """:meth:`hash_batch` for a key array the caller already validated.

        The whole Horner chain is one seam kernel
        (:func:`repro.vectorize.kwise_mod_range`), so compiled backends
        fuse all ``k`` field operations into a single pass per key.
        """
        return kwise_mod_range(
            self._coefficients, keys, self._prime, self.universe_size, self.range_size
        )

    def space_bits(self) -> int:
        """Return the number of bits needed to store this function.

        ``k`` field elements, matching the paper's
        ``O(k log(|U| + |V|))`` accounting for Carter--Wegman families.
        """
        return self.independence * self._prime.bit_length()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            "KWiseHash(universe_size=%d, range_size=%d, independence=%d)"
            % (self.universe_size, self.range_size, self.independence)
        )
