"""Siegel-style high-independence hash family stand-in.

Theorem 7 of the paper (a corollary of Siegel 2004) provides, for a
universe ``[u] = [v^c]``, a ``v^o(1)``-wise independent family mapping
``[u] -> [v]`` that evaluates in constant time and occupies ``v^eta`` bits
for an arbitrarily small constant ``eta``.  The time-optimal KNW algorithm
(Theorem 9) draws its ``h3`` from this family so that updates run in O(1)
time while the balls-and-bins analysis (which needs
``Theta(log(1/eps)/log log(1/eps))``-wise independence) still applies.

Siegel's construction is a graph-powering scheme whose constants are
famously impractical; what the KNW proofs use is only the family's
*independence on the keys actually hashed*.  This module therefore supplies
:class:`SiegelHash`, a stand-in with the same interface and the same
declared space cost ``v^eta`` (for a configurable ``eta``), implemented as
a lazily materialised random function exactly like
:class:`repro.hashing.uniform.LazyUniformHash` but with the independence
budget expressed in Siegel's terms (``k = v^o(1)``) rather than a set
capacity.  The substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

import math
import random

from .entropy import fresh_rng
from typing import Dict, Optional

from ..exceptions import ParameterError
from ..vectorize import as_key_array, np

__all__ = ["SiegelHash"]


class SiegelHash:
    """Stand-in for Siegel's constant-time, highly independent hash family.

    Attributes:
        universe_size: size of the key domain ``[0, u)``.
        range_size: size of the output range ``[0, v)``.
        independence: the number of keys on which the family promises
            joint uniformity (``v^o(1)`` in Siegel's construction; here a
            concrete integer chosen at construction time).
        eta: the space exponent — the declared space cost is
            ``range_size ** eta`` bits (Theorem 7's ``v^eta``).
    """

    __slots__ = (
        "universe_size",
        "range_size",
        "independence",
        "eta",
        "_rng",
        "_memo",
        "_failed",
        "failure_probability",
    )

    def __init__(
        self,
        universe_size: int,
        range_size: int,
        independence: Optional[int] = None,
        eta: float = 1.0,
        rng: Optional[random.Random] = None,
        failure_probability: float = 0.0,
    ) -> None:
        """Draw a random member of the family.

        Args:
            universe_size: size of the key domain; must be positive.
            range_size: size of the output range; must be positive.
            independence: independence budget; defaults to
                ``ceil(sqrt(range_size))`` which is comfortably ``v^o(1)``
                for the ranges the estimators use and far above the
                ``Theta(log(1/eps)/log log(1/eps))`` the analysis needs.
            eta: space exponent for the declared ``v^eta``-bit cost; the
                paper takes ``eta`` as small as desired (it suggests
                ``eta = 1`` is already dominated by other terms).
            rng: source of randomness.
            failure_probability: probability that the construction fails
                (Theorem 7's ``1/v^delta``); failed draws degrade to a
                constant function so tests can exercise the failure path.
        """
        if universe_size <= 0:
            raise ParameterError("universe_size must be positive")
        if range_size <= 0:
            raise ParameterError("range_size must be positive")
        if eta <= 0:
            raise ParameterError("eta must be positive")
        if not 0.0 <= failure_probability < 1.0:
            raise ParameterError("failure_probability must lie in [0, 1)")
        self.universe_size = universe_size
        self.range_size = range_size
        if independence is None:
            independence = max(4, int(math.isqrt(range_size)))
        if independence <= 0:
            raise ParameterError("independence must be positive")
        self.independence = independence
        self.eta = eta
        self._rng = fresh_rng(rng)
        self._memo: Dict[int, int] = {}
        self.failure_probability = failure_probability
        self._failed = self._rng.random() < failure_probability

    def __call__(self, key: int) -> int:
        """Evaluate the function on ``key`` (lazily materialised uniform value)."""
        if not 0 <= key < self.universe_size:
            raise ParameterError(
                "key %d outside universe [0, %d)" % (key, self.universe_size)
            )
        if self._failed:
            return 0
        value = self._memo.get(key)
        if value is None:
            value = self._rng.randrange(0, self.range_size)
            self._memo[key] = value
        return value

    def hash_batch(self, keys):
        """Evaluate the function on a whole array of keys.

        Like :meth:`repro.hashing.uniform.LazyUniformHash.hash_batch`, the
        lazily materialised values must be drawn in first-occurrence order
        so batch and scalar ingestion agree bit-for-bit; the walk is
        Python-level but free of per-item validation and call overhead.
        """
        keys = as_key_array(keys, self.universe_size)
        if self._failed:
            return np.zeros(keys.shape, dtype=np.int64)
        memo = self._memo
        randrange = self._rng.randrange
        range_size = self.range_size
        out = np.empty(keys.shape, dtype=np.int64)
        for position, key in enumerate(keys.tolist()):
            value = memo.get(key)
            if value is None:
                value = randrange(0, range_size)
                memo[key] = value
            out[position] = value
        return out

    def space_bits(self) -> int:
        """Return the paper-model space cost ``range_size ** eta`` in bits."""
        return max(1, int(math.ceil(self.range_size ** self.eta)))

    def distinct_keys_seen(self) -> int:
        """Return the number of distinct keys queried so far."""
        return len(self._memo)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            "SiegelHash(universe_size=%d, range_size=%d, independence=%d, eta=%.3f)"
            % (self.universe_size, self.range_size, self.independence, self.eta)
        )
