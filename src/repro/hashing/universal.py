"""Pairwise (2-wise) independent hash families.

The KNW algorithms use pairwise independence in three places (Figure 2 and
Figure 3 of the paper):

* ``h1 : [n] -> [0, n-1]`` — the subsampling hash whose least significant
  bit determines the level of an item.
* ``h2 : [n] -> [K^3]`` — the "spreading" hash whose range is a polynomial
  blow-up of the bucket count so that the surviving items are perfectly
  hashed with probability ``1 - O(1/K)``.
* ``h4 : [K^3] -> [K]`` — the L0 algorithm's collision-breaking hash
  (Lemma 6).

All of these are classic Carter--Wegman constructions: a random degree-1
polynomial over a prime field, reduced to the desired power-of-two range.
Pairwise independence of the construction holds exactly when the range
divides the field size; with a power-of-two range and a much larger prime
field the family is pairwise independent up to an ``O(range/p)`` bias,
which is far below every failure probability the paper budgets for.  The
space to store a function is two field elements, i.e. ``O(log n)`` bits,
exactly as the paper accounts.
"""

from __future__ import annotations

import random

from .entropy import fresh_rng
from typing import Optional

from ..exceptions import ParameterError
from ..vectorize import affine_mod_range, as_key_array, np
from .bitops import is_power_of_two
from .primes import field_prime_for_universe

__all__ = ["PairwiseHash", "MultiplyShiftHash"]


class PairwiseHash:
    """A function drawn from a 2-wise independent family ``[u] -> [v]``.

    The function is ``h(x) = ((a*x + b) mod p) mod v`` for a random
    ``a, b`` in ``F_p`` with ``a != 0`` and a prime ``p >= u``.

    Attributes:
        universe_size: size ``u`` of the key domain ``[0, u)``.
        range_size: size ``v`` of the output range ``[0, v)``.
    """

    __slots__ = ("universe_size", "range_size", "_prime", "_a", "_b")

    def __init__(
        self,
        universe_size: int,
        range_size: int,
        rng: Optional[random.Random] = None,
    ) -> None:
        """Draw a random member of the family.

        Args:
            universe_size: size of the key domain; must be positive.
            range_size: size of the output range; must be positive.
            rng: source of randomness used to pick the function.
        """
        if universe_size <= 0:
            raise ParameterError("universe_size must be positive")
        if range_size <= 0:
            raise ParameterError("range_size must be positive")
        rng = fresh_rng(rng)
        self.universe_size = universe_size
        self.range_size = range_size
        self._prime = field_prime_for_universe(max(universe_size, range_size))
        self._a = rng.randrange(1, self._prime)
        self._b = rng.randrange(0, self._prime)

    def __call__(self, key: int) -> int:
        """Evaluate the hash function on ``key``.

        Args:
            key: an integer in ``[0, universe_size)``.

        Returns:
            An integer in ``[0, range_size)``.
        """
        if not 0 <= key < self.universe_size:
            raise ParameterError(
                "key %d outside universe [0, %d)" % (key, self.universe_size)
            )
        return ((self._a * key + self._b) % self._prime) % self.range_size

    def hash_batch(self, keys):
        """Evaluate the hash on a whole array of keys at once.

        Exactly equivalent to calling the function per key — the batched
        modular arithmetic (:func:`repro.vectorize.affine_mod`) is exact —
        but without per-item interpreter overhead.  The common field primes
        (the Mersenne primes ``2^31 - 1`` and ``2^61 - 1``) stay entirely in
        ``uint64`` arithmetic; enormous moduli (cubed universes beyond
        ``2^61``) degrade to object arrays of Python ints.

        Args:
            keys: integer sequence or ndarray with values in
                ``[0, universe_size)`` (validated up front).

        Returns:
            ndarray of hash values in ``[0, range_size)`` (``uint64`` when
            the range fits a word, object dtype otherwise).
        """
        keys = as_key_array(keys, self.universe_size)
        return self.hash_batch_validated(keys)

    def hash_batch_validated(self, keys):
        """:meth:`hash_batch` for a key array the caller already validated.

        The estimators validate a batch once at their entry point; their
        inner hash passes use this form to avoid re-scanning the same
        array (an O(n) max-check per hash, several times per chunk on the
        bundle-sharing KNW path).
        """
        return affine_mod_range(
            self._a, self._b, keys, self._prime, self.universe_size, self.range_size
        )

    def space_bits(self) -> int:
        """Return the number of bits needed to store this function.

        Two field elements of ``ceil(log2(p))`` bits each, matching the
        paper's ``O(log n)`` accounting for ``h1`` and ``h2``.
        """
        return 2 * self._prime.bit_length()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            "PairwiseHash(universe_size=%d, range_size=%d)"
            % (self.universe_size, self.range_size)
        )


class MultiplyShiftHash:
    """Dietzfelbinger-style multiply-shift hashing onto a power-of-two range.

    A cheaper 2-universal alternative used by some baselines (LogLog,
    HyperLogLog, linear counting) where the full pairwise-independence
    guarantee of :class:`PairwiseHash` is not needed but evaluation speed
    matters for the update-time benchmarks.  The function is
    ``h(x) = ((a*x + b) mod 2^(2w)) >> (2w - r)`` with odd ``a``.
    """

    __slots__ = ("universe_size", "range_size", "_a", "_b", "_word_bits", "_shift")

    def __init__(
        self,
        universe_size: int,
        range_size: int,
        rng: Optional[random.Random] = None,
    ) -> None:
        """Draw a random member of the family.

        Args:
            universe_size: size of the key domain; must be positive.
            range_size: size of the output range; must be a power of two.
            rng: source of randomness used to pick the function.
        """
        if universe_size <= 0:
            raise ParameterError("universe_size must be positive")
        if not is_power_of_two(range_size):
            raise ParameterError("MultiplyShiftHash requires a power-of-two range")
        rng = fresh_rng(rng)
        self.universe_size = universe_size
        self.range_size = range_size
        key_bits = max(universe_size - 1, 1).bit_length()
        self._word_bits = 2 * max(key_bits, range_size.bit_length())
        self._shift = self._word_bits - (range_size.bit_length() - 1)
        mask = (1 << self._word_bits) - 1
        self._a = rng.randrange(1, 1 << self._word_bits) | 1
        self._b = rng.randrange(0, 1 << self._word_bits)
        self._a &= mask
        self._b &= mask

    def __call__(self, key: int) -> int:
        """Evaluate the hash function on ``key``."""
        if not 0 <= key < self.universe_size:
            raise ParameterError(
                "key %d outside universe [0, %d)" % (key, self.universe_size)
            )
        if self.range_size == 1:
            return 0
        word = (self._a * key + self._b) & ((1 << self._word_bits) - 1)
        return word >> self._shift

    def hash_batch(self, keys):
        """Evaluate the hash on a whole array of keys at once.

        When the word width fits 64 bits the evaluation is pure ``uint64``
        (the mask is the natural wraparound); wider configurations fall
        back to object arrays so results stay bit-identical to the scalar
        path.
        """
        keys = as_key_array(keys, self.universe_size)
        if self.range_size == 1:
            return np.zeros(keys.shape, dtype=np.uint64)
        if self._word_bits <= 64:
            word = np.uint64(self._a) * keys + np.uint64(self._b)
            if self._word_bits < 64:
                word = word & np.uint64((1 << self._word_bits) - 1)
            return word >> np.uint64(self._shift)
        mask = (1 << self._word_bits) - 1
        out = np.empty(keys.shape, dtype=object)
        out[:] = [
            ((self._a * key + self._b) & mask) >> self._shift
            for key in keys.tolist()
        ]
        return out

    def space_bits(self) -> int:
        """Return the number of bits needed to store this function."""
        return 2 * self._word_bits

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            "MultiplyShiftHash(universe_size=%d, range_size=%d)"
            % (self.universe_size, self.range_size)
        )
