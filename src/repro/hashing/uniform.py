"""Pagh--Pagh style "uniform on a fixed set" hash family stand-in.

Theorem 6 of the paper (Pagh and Pagh 2008) provides a family of functions
``[u] -> [v]`` such that, for any *fixed but unknown* set ``S`` of at most
``z`` keys, a random member of the family is fully independent when
restricted to ``S`` with probability ``1 - O(1/z^c)``, can be stored in
``O(z log v)`` bits, and evaluates in constant time.  The fast version of
RoughEstimator (Lemma 5) uses this family so that its ``h3`` behaves like a
truly random function on the at most ``2 K_RE`` surviving items.

Building the actual Pagh--Pagh construction (two rounds of tabulation plus
a displacement table) is possible but its heavy constants add nothing to
the reproduction: what the correctness proofs consume is exactly the
*distributional* guarantee above.  This module therefore provides
:class:`LazyUniformHash`, which realises the guarantee directly:

* values are drawn independently and uniformly from ``[v]`` the first time
  a key is queried and memoised thereafter (so the function restricted to
  the queried set *is* a uniformly random function on that set);
* the structure enforces the paper's capacity ``z``: the memo table is
  capped, and the declared space cost is the paper's ``O(z log v)`` bits
  regardless of how few keys were actually seen;
* an optional *failure injection* knob models the ``O(1/z^c)`` probability
  with which the real family fails to be independent, so tests can exercise
  failure handling.

DESIGN.md records this substitution (paper construction -> behavioural
stand-in) and why it preserves the relevant behaviour.
"""

from __future__ import annotations

import random

from .entropy import fresh_rng
from typing import Dict, Optional

from ..exceptions import ParameterError
from ..vectorize import as_key_array, np

__all__ = ["LazyUniformHash"]


class LazyUniformHash:
    """A function that is uniformly random on the set of keys actually queried.

    Attributes:
        universe_size: size of the key domain ``[0, u)``.
        range_size: size of the output range ``[0, v)``.
        capacity: the ``z`` of Theorem 6 — the largest set on which the
            family promises full independence (and the size used for space
            accounting).
    """

    __slots__ = (
        "universe_size",
        "range_size",
        "capacity",
        "_rng",
        "_memo",
        "_failed",
        "failure_probability",
    )

    def __init__(
        self,
        universe_size: int,
        range_size: int,
        capacity: int,
        rng: Optional[random.Random] = None,
        failure_probability: float = 0.0,
    ) -> None:
        """Draw a random member of the family.

        Args:
            universe_size: size of the key domain; must be positive.
            range_size: size of the output range; must be positive.
            capacity: maximum number of distinct keys for which full
                independence is promised; must be positive.
            rng: source of randomness (also used for lazily drawn values).
            failure_probability: probability that this draw of the family
                is "bad" (models the ``O(1/z^c)`` failure of Theorem 6).
                When a draw is bad the function degrades to a fixed
                constant function, which is the most adversarial
                non-independent behaviour for occupancy statistics.
        """
        if universe_size <= 0:
            raise ParameterError("universe_size must be positive")
        if range_size <= 0:
            raise ParameterError("range_size must be positive")
        if capacity <= 0:
            raise ParameterError("capacity must be positive")
        if not 0.0 <= failure_probability < 1.0:
            raise ParameterError("failure_probability must lie in [0, 1)")
        self.universe_size = universe_size
        self.range_size = range_size
        self.capacity = capacity
        self._rng = fresh_rng(rng)
        self._memo: Dict[int, int] = {}
        self.failure_probability = failure_probability
        self._failed = self._rng.random() < failure_probability

    def __call__(self, key: int) -> int:
        """Evaluate the function on ``key``.

        Values are independent uniform draws per distinct key (memoised).
        Once more than ``capacity`` distinct keys have been queried the
        guarantee of Theorem 6 no longer applies; evaluation still works
        (the memo keeps growing) because the calling algorithms only rely
        on independence for the first ``capacity`` keys, but
        :meth:`overflowed` reports that the promise was exceeded.
        """
        if not 0 <= key < self.universe_size:
            raise ParameterError(
                "key %d outside universe [0, %d)" % (key, self.universe_size)
            )
        return self.draw_value(key)

    def draw_value(self, key: int) -> int:
        """Return the memoised value for a pre-validated key.

        Drawing happens at first occurrence, consuming one value from the
        (possibly shared) RNG — batch callers that must reproduce the
        scalar draw *order* across several functions sharing one RNG (the
        RoughEstimator's three copies) call this directly in stream order.
        """
        if self._failed:
            return 0
        value = self._memo.get(key)
        if value is None:
            value = self._rng.randrange(0, self.range_size)
            self._memo[key] = value
        return value

    def hash_batch(self, keys):
        """Evaluate the function on a whole array of keys.

        The family is *lazily materialised*: unseen keys consume one RNG
        draw each, in order.  Batch evaluation therefore walks the keys in
        stream order (preserving the exact scalar draw sequence, so batch
        and scalar ingestion build bit-identical functions) with the
        per-item validation hoisted out of the loop.  The memo stays small
        — the calling algorithms only feed this family the ``O(K_RE)``
        surviving items — so the Python-level walk is not the hot path.

        Args:
            keys: integer sequence or ndarray with values in
                ``[0, universe_size)``.

        Returns:
            An ``int64`` ndarray of values in ``[0, range_size)``.
        """
        keys = as_key_array(keys, self.universe_size)
        if self._failed:
            return np.zeros(keys.shape, dtype=np.int64)
        draw = self.draw_value
        out = np.empty(keys.shape, dtype=np.int64)
        for position, key in enumerate(keys.tolist()):
            out[position] = draw(key)
        return out

    def overflowed(self) -> bool:
        """Return True when more than ``capacity`` distinct keys were queried."""
        return len(self._memo) > self.capacity

    def distinct_keys_seen(self) -> int:
        """Return the number of distinct keys queried so far."""
        return len(self._memo)

    def space_bits(self) -> int:
        """Return the paper-model space cost of storing this function.

        Theorem 6 charges ``O(z log v)`` bits for a capacity-``z`` member of
        the family; we report exactly ``capacity * ceil(log2(range_size))``
        so that the space benchmarks account for what the real construction
        would occupy, not for the Python memo dictionary.
        """
        value_bits = max((self.range_size - 1).bit_length(), 1)
        return self.capacity * value_bits

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            "LazyUniformHash(universe_size=%d, range_size=%d, capacity=%d)"
            % (self.universe_size, self.range_size, self.capacity)
        )
