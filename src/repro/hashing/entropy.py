"""The library's single ambient-entropy source.

Every hash family and estimator accepts an explicit seed/RNG; when the
caller passes none, they fall back to fresh OS entropy *through this
module only*.  Centralizing the fallback keeps the determinism contract
auditable: ``repro.lint``'s ``det-unseeded-rng`` rule forbids unseeded
RNG construction everywhere else in the library, so "is this sketch
seed-determined?" reduces to "did anything call into this module?".
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = ["fresh_rng", "fresh_seed"]


def fresh_rng(rng: Optional[random.Random] = None) -> random.Random:
    """Return ``rng`` unchanged, or a freshly-entropy-seeded generator.

    The standard fallback for ``rng: Optional[random.Random]``
    parameters: explicitly-passed generators (the seeded, deterministic
    path) are returned as-is.
    """
    if rng is not None:
        return rng
    # The one intentional ambient-entropy draw in the library: callers who
    # omitted the seed asked for an independent random function.
    return random.Random()  # lint: allow[det-unseeded-rng] sole documented entropy fallback for seedless callers


def fresh_seed(bits: int = 63) -> int:
    """Draw a fresh integer seed from OS entropy (for seedless callers)."""
    return fresh_rng().getrandbits(bits)
