"""Hash-function substrate for the KNW reproduction.

This subpackage contains every hash family the paper relies on:

* :mod:`repro.hashing.bitops` — constant-operation lsb/msb word primitives
  (paper Theorem 5).
* :mod:`repro.hashing.universal` — pairwise independent Carter--Wegman and
  multiply-shift families (the paper's ``h1``, ``h2``, ``h4``).
* :mod:`repro.hashing.kwise` — k-wise independent polynomial families
  (the paper's ``h3`` in the reference implementation, Lemma 2).
* :mod:`repro.hashing.uniform` — Pagh--Pagh uniform-hashing stand-in
  (paper Theorem 6, used by the fast RoughEstimator of Lemma 5).
* :mod:`repro.hashing.siegel` — Siegel high-independence stand-in
  (paper Theorem 7, used by the time-optimal algorithm of Theorem 9).
* :mod:`repro.hashing.tabulation` — simple tabulation hashing (ablations).
* :mod:`repro.hashing.random_oracle` — truly random function simulation for
  the oracle-model baselines of Figure 1.
* :mod:`repro.hashing.primes` — primality testing and random prime
  selection (L0 fingerprints of Lemma 6 and Lemma 8).

Every family also exposes ``hash_batch(keys)``, the vectorized evaluation
used by the batch-ingestion pipeline; it is exactly equivalent to calling
the function per key (the batched field arithmetic in
:mod:`repro.vectorize` is exact).
"""

from .bitops import (
    WORD_SIZE,
    ceil_log2,
    floor_log2,
    is_power_of_two,
    lsb,
    lsb64,
    lsb_batch,
    msb,
    msb64,
    popcount,
    reverse_bits,
    rho_batch,
)
from .kwise import KWiseHash, required_independence
from .primes import (
    MERSENNE_31,
    MERSENNE_61,
    field_prime_for_universe,
    is_prime,
    next_prime,
    prev_prime,
    primes_in_range,
    random_prime,
)
from .random_oracle import RandomOracle
from .siegel import SiegelHash
from .tabulation import TabulationHash
from .uniform import LazyUniformHash
from .universal import MultiplyShiftHash, PairwiseHash

__all__ = [
    "WORD_SIZE",
    "ceil_log2",
    "floor_log2",
    "is_power_of_two",
    "lsb",
    "lsb64",
    "lsb_batch",
    "msb",
    "msb64",
    "popcount",
    "reverse_bits",
    "rho_batch",
    "KWiseHash",
    "required_independence",
    "MERSENNE_31",
    "MERSENNE_61",
    "field_prime_for_universe",
    "is_prime",
    "next_prime",
    "prev_prime",
    "primes_in_range",
    "random_prime",
    "RandomOracle",
    "SiegelHash",
    "TabulationHash",
    "LazyUniformHash",
    "MultiplyShiftHash",
    "PairwiseHash",
]
