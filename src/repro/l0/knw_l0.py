"""The KNW L0 (Hamming norm) estimation algorithm (Section 4, Theorem 10).

The algorithm is the Figure 4 skeleton with every bit replaced by a Lemma 6
fingerprint counter, so that deletions and mixed-sign frequencies are
handled correctly:

* ``h1`` subsamples items into ``log n`` levels by ``lsb``;
* ``h2``/``h3`` place an item into one of ``K = 1/eps^2`` columns;
* the cell accumulates ``x_i * u[h4(h2(i))]`` modulo a random prime, so a
  cell is non-zero exactly when the items hashed to it have not all
  cancelled (up to the small failure probability Lemma 6 bounds);
* :class:`repro.l0.rough_l0.RoughL0Estimator` supplies the constant-factor
  approximation ``R`` the reporting step needs;
* the small-L0 regimes are handled as in Section 3.3: exact recovery below
  ~100 (Lemma 8) and a single unsampled fingerprint row of ``2K`` cells up
  to ``Theta(K)``.

Space is ``O(eps^-2 log n (log(1/eps) + log log(mM)))`` bits; update and
reporting are O(1) (one cell, one rough-estimator update, one row read).
"""

from __future__ import annotations

import math
import random
from typing import Optional

from ..bitstructs.space import SpaceBreakdown
from ..core.balls_bins import invert_occupancy
from ..core.knw import bins_for_eps
from ..estimators.base import ItemBatch, TurnstileEstimator
from ..exceptions import MergeError, ParameterError
from ..hashing.bitops import lsb, lsb_batch
from ..hashing.kwise import KWiseHash, required_independence
from ..hashing.universal import PairwiseHash
from ..vectorize import HAS_NUMPY, as_delta_array, as_key_array, mod_range, np
from .fingerprint import FingerprintMatrix
from .rough_l0 import RoughL0Estimator
from .small_l0 import SmallL0Recovery

__all__ = ["KNWHammingNormEstimator"]

#: Exact tracking threshold of the small-L0 path (the paper uses 100).
_EXACT_LIMIT = 100

#: Occupancy fraction above which a row is considered saturated when the
#: adaptive row-selection rule looks for the most informative row.
_ADAPTIVE_SATURATION = 0.7

#: Margin converting the RoughL0Estimator output (which satisfies
#: ``L0/110 <= ~L0 <= L0``, i.e. it may *under*-estimate) into the
#: upper-bound oracle ``R >= L0`` that the Figure 4 row formula assumes.
#: 32 = 4x the liveness threshold covers the concentration range of the
#: deepest live level for the default capacity.
_ORACLE_MARGIN = 32.0


class KNWHammingNormEstimator(TurnstileEstimator):
    """(1 +/- eps)-approximation of ``L0 = |{i : x_i != 0}|`` under turnstile updates.

    Attributes:
        universe_size: the universe size ``n``.
        eps: the relative-error target.
        bins: the number of columns ``K``.
    """

    name = "knw-l0"
    requires_nonnegative_frequencies = False

    def __init__(
        self,
        universe_size: int,
        eps: float = 0.05,
        magnitude_bound: int = 1 << 30,
        seed: Optional[int] = None,
        bins: Optional[int] = None,
        row_selection: str = "adaptive",
        rough_capacity: int = 16,
    ) -> None:
        """Create the estimator.

        Args:
            universe_size: the universe size ``n`` (at least 2).
            eps: relative-error target in (0, 1).
            magnitude_bound: upper bound on ``mM`` — the largest absolute
                frequency any item can reach; sizes the fingerprint primes.
            seed: RNG seed.
            bins: explicit ``K`` override.
            row_selection: ``"paper"`` reads the row ``log(16R/K)`` dictated
                by the rough estimate, exactly as Figure 4 prescribes;
                ``"adaptive"`` (default) reads the deepest non-saturated row
                of the same matrix, which uses the identical state but
                avoids the large constants the conservative oracle bound
                forces (see the ablation discussion in DESIGN.md section 5).
            rough_capacity: per-level Lemma 8 capacity inside the rough
                estimator.  The paper's constant is 141; the default of 16
                keeps the per-level bucket arrays (capacity^2 counters per
                trial) small while preserving the constant-factor guarantee
                (only the constant changes).  Pass 141 to run the literal
                Appendix A.3 configuration.
        """
        if universe_size < 2:
            raise ParameterError("universe_size must be at least 2")
        if not 0.0 < eps < 1.0:
            raise ParameterError("eps must lie in (0, 1)")
        if row_selection not in ("paper", "adaptive"):
            raise ParameterError("row_selection must be 'paper' or 'adaptive'")
        if magnitude_bound < 1:
            raise ParameterError("magnitude_bound must be at least 1")
        self.universe_size = universe_size
        self.eps = eps
        self.magnitude_bound = magnitude_bound
        self.bins = bins if bins is not None else bins_for_eps(eps)
        self.row_selection = row_selection
        self.seed = seed
        rng = random.Random(seed)

        self._level_limit = max((universe_size - 1).bit_length(), 1)
        levels = self._level_limit + 1
        extended = 2 * self.bins
        domain_cubed = extended ** 3
        self._h1 = PairwiseHash(universe_size, universe_size, rng=rng)
        self._h2 = PairwiseHash(universe_size, domain_cubed, rng=rng)
        independence = required_independence(extended, eps)
        self._h3 = KWiseHash(domain_cubed, extended, independence=independence, rng=rng)

        self._matrix = FingerprintMatrix(
            levels, self.bins, magnitude_bound, seed=rng.randrange(1 << 62)
        )
        self._small_row = FingerprintMatrix(
            1, extended, magnitude_bound, seed=rng.randrange(1 << 62)
        )
        self._small_exact = SmallL0Recovery(
            universe_size,
            capacity=_EXACT_LIMIT,
            magnitude_bound=magnitude_bound,
            seed=rng.randrange(1 << 62),
        )
        self.rough = RoughL0Estimator(
            universe_size,
            magnitude_bound,
            seed=rng.randrange(1 << 62),
            capacity=rough_capacity,
        )

    # -- update ---------------------------------------------------------------------

    def update(self, item: int, delta: int) -> None:
        """Apply the turnstile update ``x_item += delta``."""
        if not 0 <= item < self.universe_size:
            raise ParameterError(
                "item %d outside universe [0, %d)" % (item, self.universe_size)
            )
        if delta == 0:
            return
        spread = self._h2(item)
        extended_column = self._h3(spread)
        level = min(lsb(self._h1(item), zero_value=self._level_limit), self._matrix.levels - 1)
        self._matrix.update(level, extended_column % self.bins, spread, delta)
        self._small_row.update(0, extended_column, spread, delta)
        self._small_exact.update(item, delta)
        self.rough.update(item, delta)

    def update_batch(self, items: ItemBatch, deltas: ItemBatch) -> None:
        """Apply a chunk of turnstile updates through the vectorized pipeline.

        The batch counterpart of :meth:`update`, bit-identical in every
        state word (all four components are additive modulo their primes,
        so batching is pure throughput):

        * ``h2``/``h3``/``h1`` evaluate once over the whole chunk via the
          batched Carter--Wegman kernels (:mod:`repro.vectorize`), with the
          level extraction as one vectorized de Bruijn ``lsb`` pass;
        * the subsampled matrix and the unsampled ``2K`` row ingest the
          chunk through :meth:`FingerprintMatrix.update_many
          <repro.l0.fingerprint.FingerprintMatrix.update_many>` (batched
          weight selection, exact batched multiply, one ``% p`` fold per
          touched cell);
        * the Lemma 8 exact structure and the rough estimator take their
          own batched paths.

        The whole chunk is validated before any component is mutated, so a
        rejected batch leaves the sketch untouched; zero deltas are
        skipped, exactly as the scalar update skips them.
        """
        if not HAS_NUMPY:  # pragma: no cover - numpy is a declared dependency
            return super().update_batch(items, deltas)
        keys = as_key_array(items, self.universe_size)
        deltas = as_delta_array(deltas, expected_length=len(keys))
        live = np.asarray(deltas != 0, dtype=bool)
        if not live.all():
            keys = keys[live]
            deltas = deltas[live]
        if keys.size == 0:
            return
        spread = self._h2.hash_batch_validated(keys)
        extended_columns = self._h3.hash_batch_validated(spread)
        levels = lsb_batch(
            self._h1.hash_batch_validated(keys), zero_value=self._level_limit
        )
        levels = np.minimum(levels, np.int64(self._matrix.levels - 1))
        columns = mod_range(extended_columns, self.bins)
        self._matrix.update_many(levels, columns, spread, deltas)
        self._small_row.update_many(
            np.zeros(len(levels), dtype=np.int64), extended_columns, spread, deltas
        )
        self._small_exact.update_batch(keys, deltas)
        self.rough.update_batch(keys, deltas)

    def merge(self, other: "TurnstileEstimator") -> None:
        """Merge another same-seed estimator into this one (stream union).

        Every component is a linear sketch — fingerprint cells and Lemma 8
        buckets are sums of deltas modulo their primes — so component-wise
        merging of two same-seed sketches fed disjoint streams is
        bit-identical to one sketch fed the concatenation.  This is what
        makes the KNW L0 sketch shardable (:mod:`repro.parallel`).
        """
        if not isinstance(other, KNWHammingNormEstimator):
            raise MergeError(
                "can only merge KNWHammingNormEstimator with its own kind"
            )
        if (
            other.universe_size != self.universe_size
            or other.bins != self.bins
            or other.magnitude_bound != self.magnitude_bound
            or other.row_selection != self.row_selection
            or self.seed is None
            or other.seed != self.seed
        ):
            raise MergeError(
                "KNW L0 sketches must share parameters and an explicit seed"
            )
        self._matrix.merge(other._matrix)
        self._small_row.merge(other._small_row)
        self._small_exact.merge(other._small_exact)
        self.rough.merge(other.rough)

    def clear(self) -> None:
        """Zero every component's counters, keeping all hash randomness."""
        self._matrix.clear()
        self._small_row.clear()
        self._small_exact.clear()
        self.rough.clear()

    # -- reporting -------------------------------------------------------------------

    def _small_row_estimate(self) -> float:
        occupancy = self._small_row.row_occupancy(0)
        return invert_occupancy(occupancy, 2 * self.bins)

    def _paper_row(self) -> int:
        if self.rough.deepest_live_level() < 0:
            return 0
        oracle = _ORACLE_MARGIN * self.rough.estimate()
        row = int(round(math.log2(max(16.0 * oracle / self.bins, 1.0))))
        return min(max(row, 0), self._matrix.levels - 1)

    def _adaptive_row(self) -> int:
        saturation = _ADAPTIVE_SATURATION * self.bins
        for row in range(self._matrix.levels):
            if self._matrix.row_occupancy(row) <= saturation:
                return row
        return self._matrix.levels - 1

    def _matrix_estimate(self) -> float:
        row = self._paper_row() if self.row_selection == "paper" else self._adaptive_row()
        occupancy = self._matrix.row_occupancy(row)
        return float(1 << (row + 1)) * invert_occupancy(occupancy, self.bins)

    def estimate(self) -> float:
        """Return the current estimate of the Hamming norm.

        Regime selection mirrors Theorem 4's handover: the unsampled
        ``2K``-cell row decides whether L0 is still small; while it reports
        fewer than ~100 live items the Lemma 8 structure's exact answer is
        returned, up to ``K/16`` the row's own inversion is returned, and
        beyond that the subsampled matrix estimator takes over.
        """
        row_estimate = self._small_row_estimate()
        if row_estimate < _EXACT_LIMIT:
            return self._small_exact.estimate()
        if row_estimate < self.bins / 16.0:
            return row_estimate
        return self._matrix_estimate()

    # -- space accounting --------------------------------------------------------------

    def space_breakdown(self) -> SpaceBreakdown:
        """Return the itemised space budget."""
        breakdown = SpaceBreakdown(self.name)
        breakdown.add_component("h1", self._h1)
        breakdown.add_component("h2", self._h2)
        breakdown.add_component("h3", self._h3)
        breakdown.add("fingerprint-matrix", self._matrix.space_bits())
        breakdown.add("small-row", self._small_row.space_bits())
        breakdown.add("small-exact", self._small_exact.space_bits())
        breakdown.add("rough-l0", self.rough.space_bits())
        return breakdown

    def space_bits(self) -> int:
        """Return the estimator's total space in bits."""
        return self.space_breakdown().total()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            "KNWHammingNormEstimator(universe_size=%d, eps=%g, bins=%d, row_selection=%r)"
            % (self.universe_size, self.eps, self.bins, self.row_selection)
        )
