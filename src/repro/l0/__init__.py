"""L0 (Hamming norm) estimation for turnstile streams (Section 4 of the paper).

* :mod:`repro.l0.fingerprint` — F_p fingerprint counters (Lemma 6).
* :mod:`repro.l0.small_l0` — exact recovery of small L0 (Lemma 8).
* :mod:`repro.l0.rough_l0` — RoughL0Estimator (Appendix A.3, Theorem 11).
* :mod:`repro.l0.knw_l0` — the full KNW L0 estimator (Theorem 10).
* :mod:`repro.l0.ganguly` — the Ganguly-style baseline the paper compares against.
"""

from .fingerprint import FingerprintMatrix, choose_fingerprint_prime
from .ganguly import GangulyStyleL0Estimator
from .knw_l0 import KNWHammingNormEstimator
from .rough_l0 import (
    ROUGH_L0_CAPACITY,
    ROUGH_L0_FACTOR,
    ROUGH_L0_THRESHOLD,
    RoughL0Estimator,
)
from .small_l0 import SmallL0Recovery, choose_small_prime, make_trial_hashes

__all__ = [
    "FingerprintMatrix",
    "choose_fingerprint_prime",
    "GangulyStyleL0Estimator",
    "KNWHammingNormEstimator",
    "ROUGH_L0_CAPACITY",
    "ROUGH_L0_FACTOR",
    "ROUGH_L0_THRESHOLD",
    "RoughL0Estimator",
    "SmallL0Recovery",
    "choose_small_prime",
    "make_trial_hashes",
]
