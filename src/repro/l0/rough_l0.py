"""RoughL0Estimator: a constant-factor L0 approximation (Appendix A.3).

The L0 analogue of RoughEstimator (Theorem 11): using
``O(log n log log(mM))`` bits and O(1) update/report time it outputs, with
probability at least 9/16, a value within a constant factor (110) of the
true Hamming norm.

Construction: a pairwise hash ``h : [n] -> [n]`` splits the universe into
substreams ``S_j = {x : lsb(h(x)) = j}``.  Each substream gets a Lemma 8
structure with capacity 141 and failure probability 1/16 (all levels share
the same ``O(log(1/delta))`` pairwise trial hashes).  The estimate is
``2^j`` for the deepest level ``j`` whose structure reports more than 8
live items (1 when no level does).  A machine word whose ``j``-th bit
records "level j reports > 8" gives O(1) reporting via an msb computation.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..bitstructs.space import SpaceBreakdown
from ..estimators.base import ItemBatch, TurnstileEstimator
from ..exceptions import MergeError, ParameterError
from ..hashing.bitops import lsb, lsb_batch, msb
from ..hashing.universal import PairwiseHash
from ..vectorize import HAS_NUMPY, as_delta_array, as_key_array, np, residues_mod
from .small_l0 import SmallL0Recovery, make_trial_hashes, trials_for_failure_probability

__all__ = ["RoughL0Estimator", "ROUGH_L0_CAPACITY", "ROUGH_L0_THRESHOLD", "ROUGH_L0_FACTOR"]

#: Per-level Lemma 8 capacity used by the paper (c = 141).
ROUGH_L0_CAPACITY = 141

#: A level is considered "live" when its recovery reports more than 8 items.
ROUGH_L0_THRESHOLD = 8

#: The constant-factor guarantee of Theorem 11 (approximation factor 110).
ROUGH_L0_FACTOR = 110


class RoughL0Estimator(TurnstileEstimator):
    """Constant-factor Hamming-norm approximation valid under deletions.

    Attributes:
        universe_size: the universe size ``n``.
        levels: number of subsampling levels (``log2(n) + 1``).
    """

    name = "knw-rough-l0"
    requires_nonnegative_frequencies = False

    def __init__(
        self,
        universe_size: int,
        magnitude_bound: int,
        seed: Optional[int] = None,
        capacity: int = ROUGH_L0_CAPACITY,
        delta: float = 1.0 / 16.0,
    ) -> None:
        """Create the estimator.

        Args:
            universe_size: the universe size ``n`` (at least 2).
            magnitude_bound: upper bound on ``mM``.
            seed: RNG seed.
            capacity: per-level Lemma 8 capacity (paper value 141; tests
                shrink it to keep the bucket arrays small).
            delta: per-level failure probability (paper value 1/16).
        """
        if universe_size < 2:
            raise ParameterError("universe_size must be at least 2")
        rng = random.Random(seed)
        self.universe_size = universe_size
        self.magnitude_bound = magnitude_bound
        self.capacity = capacity
        self.seed = seed
        self._level_limit = max((universe_size - 1).bit_length(), 1)
        self.levels = self._level_limit + 1
        self._splitter = PairwiseHash(universe_size, universe_size, rng=rng)
        buckets = capacity * capacity
        trial_count = trials_for_failure_probability(delta)
        self._shared_hashes = make_trial_hashes(
            universe_size, buckets, trial_count, rng=rng
        )
        self._per_level: List[SmallL0Recovery] = [
            SmallL0Recovery(
                universe_size,
                capacity=capacity,
                magnitude_bound=magnitude_bound,
                seed=rng.randrange(1 << 62),
                trial_hashes=self._shared_hashes,
            )
            for _ in range(self.levels)
        ]
        # The "live levels" bit-vector kept in a machine word for O(1) reporting.
        self._live_word = 0

    def update(self, item: int, delta: int) -> None:
        """Route the update to its substream's recovery structure."""
        if not 0 <= item < self.universe_size:
            raise ParameterError(
                "item %d outside universe [0, %d)" % (item, self.universe_size)
            )
        level = lsb(self._splitter(item), zero_value=self._level_limit)
        level = min(level, self.levels - 1)
        recovery = self._per_level[level]
        recovery.update(item, delta)
        if recovery.exceeds(ROUGH_L0_THRESHOLD):
            self._live_word |= 1 << level
        else:
            self._live_word &= ~(1 << level)

    def update_batch(self, items: ItemBatch, deltas: ItemBatch) -> None:
        """Route a whole chunk of updates through vectorized passes.

        The splitter hash and the ``lsb`` level extraction run once over
        the batch; updates are then grouped by level and each touched
        level's Lemma 8 structure ingests its group through the shared
        scatter-sum path.  The live-level word is recomputed from the
        touched levels' final ``exceeds`` answers, which equals the
        scalar loop's last write per level.
        """
        if not HAS_NUMPY:  # pragma: no cover - numpy is a declared dependency
            return super().update_batch(items, deltas)
        keys = as_key_array(items, self.universe_size)
        deltas = as_delta_array(deltas, expected_length=len(keys))
        if keys.size == 0:
            return
        levels = lsb_batch(
            self._splitter.hash_batch_validated(keys), zero_value=self._level_limit
        )
        levels = np.minimum(levels, np.int64(self.levels - 1))
        for level in np.unique(levels).tolist():
            group = levels == level
            recovery = self._per_level[int(level)]
            residues = residues_mod(deltas[group], recovery.prime)
            recovery._apply_residues(keys[group], residues)
            if recovery.exceeds(ROUGH_L0_THRESHOLD):
                self._live_word |= 1 << int(level)
            else:
                self._live_word &= ~(1 << int(level))

    def merge(self, other: "TurnstileEstimator") -> None:
        """Merge another same-seed rough estimator into this one.

        All per-level Lemma 8 structures are linear, so they merge
        counter-wise; the live-level word is then recomputed from the
        merged structures.  Requires identical parameters and an explicit
        shared seed (the per-level structures verify the actual hash
        randomness matches as well).
        """
        if not isinstance(other, RoughL0Estimator):
            raise MergeError("can only merge RoughL0Estimator with its own kind")
        if (
            other.universe_size != self.universe_size
            or other.capacity != self.capacity
            or other.levels != self.levels
            or self.seed is None
            or other.seed != self.seed
        ):
            raise MergeError(
                "RoughL0Estimator merge requires identical parameters and an "
                "explicit shared seed"
            )
        self._live_word = 0
        for level, (mine, theirs) in enumerate(zip(self._per_level, other._per_level)):
            mine.merge(theirs)
            if mine.exceeds(ROUGH_L0_THRESHOLD):
                self._live_word |= 1 << level

    def clear(self) -> None:
        """Zero every level's counters, keeping all hash randomness."""
        for recovery in self._per_level:
            recovery.clear()
        self._live_word = 0

    def deepest_live_level(self) -> int:
        """Return the deepest level reporting more than 8 items, or -1."""
        if self._live_word == 0:
            return -1
        return msb(self._live_word)

    def estimate(self) -> float:
        """Return the constant-factor estimate ``2^j`` of L0 (Theorem 11).

        With probability at least 9/16 the returned value satisfies
        ``L0 / 110 <= estimate <= L0`` (the paper's constant-factor
        guarantee with its stated factor 110; with the default reduced
        capacity the factor only improves).  Streams with no live level
        return 1, which covers every ``L0 < 55`` within the same factor —
        exactly the paper's convention.  Callers that need an *upper*
        bound on L0 (the Figure 4 oracle) multiply by a margin; see
        :class:`repro.l0.knw_l0.KNWHammingNormEstimator`.
        """
        deepest = self.deepest_live_level()
        return 1.0 if deepest < 0 else float(1 << deepest)

    def space_breakdown(self) -> SpaceBreakdown:
        """Return the itemised space cost."""
        breakdown = SpaceBreakdown(self.name)
        breakdown.add_component("splitter-hash", self._splitter)
        for index, hash_function in enumerate(self._shared_hashes):
            breakdown.add("trial-hash-%d" % index, hash_function.space_bits())
        for level, recovery in enumerate(self._per_level):
            breakdown.add("level-%d" % level, recovery.space_bits())
        breakdown.add("live-level-word", self.levels)
        return breakdown

    def space_bits(self) -> int:
        """Return the estimator's total space in bits."""
        return self.space_breakdown().total()
