"""Ganguly-style baseline L0 estimator.

The paper compares its L0 algorithm against Ganguly (2007), whose sketch is
also a subsampled balls-and-bins structure but with two structural
differences the paper calls out:

* each cell keeps full-width frequency statistics (``O(log(mM))`` bits)
  rather than an ``O(log K + log log(mM))``-bit fingerprint, which is where
  the extra ``log(mM)`` factor in its space bound comes from;
* the estimator is built on the number of cells containing *exactly one*
  distinct item (singletons), whose detection requires all frequencies to
  remain non-negative — feeding it a mixed-sign stream can mis-classify
  cells.

This module re-implements that design in the same framework so the E8
benchmark can compare space, update cost, and accuracy.  It follows the
published structure (per-level cells holding the frequency sum and the
first two moments of the item identifiers for singleton detection) rather
than being a line-by-line port, which is sufficient for the comparison the
paper's Figure-1-style claims make; DESIGN.md records this as a
substitution.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..bitstructs.space import SpaceBreakdown
from ..core.balls_bins import invert_occupancy
from ..core.knw import bins_for_eps
from ..estimators.base import ItemBatch, TurnstileEstimator
from ..exceptions import MergeError, ParameterError
from ..hashing.bitops import lsb, lsb_batch
from ..hashing.universal import PairwiseHash
from ..vectorize import HAS_NUMPY, as_delta_array, as_key_array, np

__all__ = ["GangulyStyleL0Estimator"]


class _Cell:
    """One bucket: frequency total plus identifier moments for singleton tests."""

    __slots__ = ("count", "id_sum", "id_square_sum")

    def __init__(self) -> None:
        self.count = 0
        self.id_sum = 0
        self.id_square_sum = 0

    def apply(self, item: int, delta: int) -> None:
        self.count += delta
        self.id_sum += delta * item
        self.id_square_sum += delta * item * item

    def is_empty(self) -> bool:
        return self.count == 0 and self.id_sum == 0 and self.id_square_sum == 0

    def is_singleton(self) -> bool:
        """True when the cell's statistics are consistent with one live item."""
        if self.count == 0:
            return False
        if self.id_sum % self.count != 0:
            return False
        item = self.id_sum // self.count
        return self.id_square_sum == self.count * item * item


class GangulyStyleL0Estimator(TurnstileEstimator):
    """Subsampled singleton-counting L0 estimator (Ganguly 2007 style).

    Attributes:
        universe_size: the universe size ``n``.
        bins: buckets per level ``K``.
    """

    name = "ganguly-l0"
    requires_nonnegative_frequencies = True

    def __init__(
        self,
        universe_size: int,
        eps: float = 0.05,
        magnitude_bound: int = 1 << 30,
        seed: Optional[int] = None,
        bins: Optional[int] = None,
    ) -> None:
        """Create the estimator.

        Args:
            universe_size: the universe size ``n`` (at least 2).
            eps: relative-error target.
            magnitude_bound: upper bound on ``mM`` (space accounting of the
                full-width counters).
            seed: RNG seed.
            bins: explicit per-level bucket count.
        """
        if universe_size < 2:
            raise ParameterError("universe_size must be at least 2")
        if not 0.0 < eps < 1.0:
            raise ParameterError("eps must lie in (0, 1)")
        self.universe_size = universe_size
        self.eps = eps
        self.magnitude_bound = magnitude_bound
        self.bins = bins if bins is not None else bins_for_eps(eps)
        self.seed = seed
        rng = random.Random(seed)
        self._level_limit = max((universe_size - 1).bit_length(), 1)
        self.levels = self._level_limit + 1
        self._h_level = PairwiseHash(universe_size, universe_size, rng=rng)
        self._h_bucket = PairwiseHash(universe_size, self.bins, rng=rng)
        self._cells: List[List[_Cell]] = [
            [_Cell() for _ in range(self.bins)] for _ in range(self.levels)
        ]

    def update(self, item: int, delta: int) -> None:
        """Apply ``x_item += delta``."""
        if not 0 <= item < self.universe_size:
            raise ParameterError(
                "item %d outside universe [0, %d)" % (item, self.universe_size)
            )
        level = min(lsb(self._h_level(item), zero_value=self._level_limit), self.levels - 1)
        bucket = self._h_bucket(item)
        self._cells[level][bucket].apply(item, delta)

    def update_batch(self, items: ItemBatch, deltas: ItemBatch) -> None:
        """Apply a chunk of updates through vectorized passes.

        Both hashes and the ``lsb`` level extraction run once over the
        whole chunk; the three per-cell moment sums (``delta``,
        ``delta * item``, ``delta * item^2``) are scatter-summed per
        touched cell and folded in with plain integer addition.  Cell
        statistics are plain (unreduced) sums, so the result is
        bit-identical to the scalar loop in any order.  The moment sums
        run in ``int64`` whenever a proven bound keeps every partial sum
        in range, and fall back to exact big-int (object-array)
        accumulation otherwise.
        """
        if not HAS_NUMPY:  # pragma: no cover - numpy is a declared dependency
            return super().update_batch(items, deltas)
        keys = as_key_array(items, self.universe_size)
        deltas = as_delta_array(deltas, expected_length=len(keys))
        if keys.size == 0:
            return
        levels = lsb_batch(
            self._h_level.hash_batch_validated(keys), zero_value=self._level_limit
        )
        levels = np.minimum(levels, np.int64(self.levels - 1))
        buckets = self._h_bucket.hash_batch_validated(keys)
        if buckets.dtype == object:
            buckets = buckets.astype(np.int64)
        cells = levels * np.int64(self.bins) + buckets.astype(np.int64, copy=False)
        touched, inverse = np.unique(cells, return_inverse=True)

        exact = keys.dtype == object or deltas.dtype == object
        if not exact:
            item_peak = int(keys.max())
            delta_peak = max(abs(int(deltas.min())), abs(int(deltas.max())))
            # Every partial product and every running sum must stay inside
            # int64; the crude product bound below is conservative but
            # cheap to check.
            exact = (
                delta_peak * max(item_peak, 1) ** 2 * len(keys) >= (1 << 62)
            )
        if exact:
            signed = np.empty(len(keys), dtype=object)
            signed[:] = [int(delta) for delta in deltas.tolist()]
            identifiers = np.empty(len(keys), dtype=object)
            identifiers[:] = [int(key) for key in keys.tolist()]
            zeros = lambda: np.zeros(len(touched), dtype=object)  # noqa: E731
        else:
            signed = deltas.astype(np.int64, copy=False)
            identifiers = keys.astype(np.int64)
            zeros = lambda: np.zeros(len(touched), dtype=np.int64)  # noqa: E731
        count_sums, id_sums, id_square_sums = zeros(), zeros(), zeros()
        np.add.at(count_sums, inverse, signed)
        weighted = signed * identifiers
        np.add.at(id_sums, inverse, weighted)
        np.add.at(id_square_sums, inverse, weighted * identifiers)
        bins = self.bins
        for position, cell in enumerate(touched.tolist()):
            level, bucket = divmod(int(cell), bins)
            target = self._cells[level][bucket]
            target.count += int(count_sums[position])
            target.id_sum += int(id_sums[position])
            target.id_square_sum += int(id_square_sums[position])

    def merge(self, other: "TurnstileEstimator") -> None:
        """Merge another same-seed estimator into this one (stream union).

        Each cell's statistics are plain sums over the updates hashed to
        it, so same-seed sketches fed disjoint streams combine by
        cell-wise addition into exactly the single-sketch state.
        """
        if not isinstance(other, GangulyStyleL0Estimator):
            raise MergeError(
                "can only merge GangulyStyleL0Estimator with its own kind"
            )
        if (
            other.universe_size != self.universe_size
            or other.bins != self.bins
            or self.seed is None
            or other.seed != self.seed
        ):
            raise MergeError(
                "Ganguly sketches must share parameters and an explicit seed"
            )
        for level in range(self.levels):
            for mine, theirs in zip(self._cells[level], other._cells[level]):
                mine.count += theirs.count
                mine.id_sum += theirs.id_sum
                mine.id_square_sum += theirs.id_square_sum

    def clear(self) -> None:
        """Zero every cell's statistics, keeping the hash functions."""
        self._cells = [
            [_Cell() for _ in range(self.bins)] for _ in range(self.levels)
        ]

    def _row_statistics(self, level: int) -> Tuple[int, int]:
        """Return (non-empty cells, singleton cells) for one level."""
        non_empty = 0
        singletons = 0
        for cell in self._cells[level]:
            if cell.is_empty():
                continue
            non_empty += 1
            if cell.is_singleton():
                singletons += 1
        return non_empty, singletons

    def estimate(self) -> float:
        """Return the estimated Hamming norm.

        Reporting scans levels from the unsampled one downward and uses the
        deepest level whose occupancy is informative (below ~70% load),
        inverting the balls-and-bins occupancy at that level — the same
        statistical core as Ganguly's singleton estimator with the
        occupancy inversion standing in for the singleton-count inversion
        (both are functions of the same per-level load).
        """
        saturation = 0.7 * self.bins
        for level in range(self.levels):
            non_empty, _ = self._row_statistics(level)
            if non_empty <= saturation:
                return float(1 << (level + 1)) * invert_occupancy(non_empty, self.bins)
        return float(self.bins)

    def space_breakdown(self) -> SpaceBreakdown:
        """Return the itemised space cost.

        Each cell is charged three full-width counters: the frequency sum
        (``log2(mM)`` bits) and the two identifier-moment sums
        (``log2(mM) + log2(n)`` and ``log2(mM) + 2 log2(n)`` bits), which is
        the ``log(mM)``-factor overhead the paper attributes to Ganguly's
        approach.
        """
        breakdown = SpaceBreakdown(self.name)
        freq_bits = max(self.magnitude_bound.bit_length(), 1)
        id_bits = max((self.universe_size - 1).bit_length(), 1)
        per_cell = freq_bits + (freq_bits + id_bits) + (freq_bits + 2 * id_bits)
        breakdown.add("cells", self.levels * self.bins * per_cell)
        breakdown.add_component("level-hash", self._h_level)
        breakdown.add_component("bucket-hash", self._h_bucket)
        return breakdown

    def space_bits(self) -> int:
        """Return the estimator's total space in bits."""
        return self.space_breakdown().total()
