"""Fingerprint counters over ``F_p`` for the L0 bit-matrix (Lemma 6).

For L0 estimation the Figure 4 bitmatrix cannot store plain bits: an item
inserted and later deleted must stop counting, and two items of opposite
sign hashed to the same cell must not cancel to a false "empty".  Lemma 6
replaces each bit ``A[i][j]`` by a counter

    ``B[i][j] = sum over items hashed to the cell of  x_item * u[h4(h2(item))]  (mod p)``

where ``u`` is a random vector over ``F_p``, ``h4`` is pairwise
independent, and ``p`` is a random prime in ``[D, D^3]`` with
``D = 100 K log(mM)``.  The cell is interpreted as "occupied" iff the
counter is non-zero; the paper shows this interpretation recovers the row
the estimator needs with probability 2/3 (amplifiable).

Each counter occupies ``O(log K + log log(mM))`` bits, which is where
Theorem 10's space bound comes from.
"""

from __future__ import annotations

import math
import random
import weakref
from typing import List, Optional

from ..bitstructs.space import SpaceBreakdown
from ..exceptions import MergeError, ParameterError
from ..hashing.primes import random_prime
from ..hashing.universal import PairwiseHash
from ..vectorize import (
    grouped_residue_sums,
    mod_range,
    mulmod_arrays,
    np,
    require_numpy,
    residues_mod,
)

__all__ = ["FingerprintMatrix", "choose_fingerprint_prime"]

#: Largest number of distinct delta residues for which the batched update
#: precomputes the full ``bins x deltas`` weight-product table instead of
#: multiplying per update (see :meth:`FingerprintMatrix.update_many`).
_DELTA_TABLE_LIMIT = 16

#: Per-matrix memo of the last weight-product table, keyed weakly by the
#: matrix so it never enters the serialized state.  Streams re-use the
#: same distinct delta residues chunk after chunk (typically just
#: ``{1, p-1}``), so the ``bins x deltas`` Python-int multiply pass runs
#: once per matrix instead of once per batch.  The entry records the
#: weight list and prime it was built from; ``load_state_dict`` replaces
#: both objects, which invalidates the memo automatically.
_WEIGHT_TABLE_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def choose_fingerprint_prime(
    bins: int, magnitude_bound: int, rng: Optional[random.Random] = None
) -> int:
    """Pick the random prime ``p`` of Lemma 6.

    Args:
        bins: the number of columns ``K``.
        magnitude_bound: an upper bound on ``mM`` (the largest possible
            absolute frequency of any item at any time).
        rng: source of randomness.

    Returns:
        A prime in ``[D, D^3]`` for ``D = 100 K log2(mM)``.
    """
    if bins <= 0:
        raise ParameterError("bins must be positive")
    if magnitude_bound < 1:
        raise ParameterError("magnitude_bound must be at least 1")
    log_mm = max(math.log2(max(magnitude_bound, 2)), 1.0)
    lower = max(int(100 * bins * log_mm), 7)
    upper = lower ** 3
    return random_prime(lower, upper, rng=rng)


class FingerprintMatrix:
    """A ``levels x bins`` matrix of F_p fingerprint counters.

    Attributes:
        levels: number of subsampling levels (rows), typically ``log2(n)+1``.
        bins: number of columns ``K``.
        prime: the modulus ``p``.
    """

    def __init__(
        self,
        levels: int,
        bins: int,
        magnitude_bound: int,
        seed: Optional[int] = None,
        prime: Optional[int] = None,
    ) -> None:
        """Create the matrix.

        Args:
            levels: number of rows; must be positive.
            bins: number of columns ``K``; must be positive.
            magnitude_bound: upper bound on ``mM`` used to size the prime.
            seed: RNG seed for the prime, the random vector ``u`` and ``h4``.
            prime: explicit modulus override (tests use small primes to
                exercise the false-negative path deliberately).
        """
        if levels <= 0:
            raise ParameterError("levels must be positive")
        if bins <= 0:
            raise ParameterError("bins must be positive")
        rng = random.Random(seed)
        self.levels = levels
        self.bins = bins
        self.magnitude_bound = magnitude_bound
        self.prime = prime if prime is not None else choose_fingerprint_prime(
            bins, magnitude_bound, rng=rng
        )
        if self.prime < 2:
            raise ParameterError("prime must be at least 2")
        # The random weight vector u in F_p^K and the collision-breaking h4.
        self._weights: List[int] = [rng.randrange(1, self.prime) for _ in range(bins)]
        self._h4 = PairwiseHash(max(bins ** 3, bins), bins, rng=rng)
        self._cells: List[List[int]] = [[0] * bins for _ in range(levels)]
        self._nonzero_per_row: List[int] = [0] * levels

    def update(self, level: int, column: int, spread_key: int, delta: int) -> None:
        """Apply ``B[level][column] += delta * u[h4(spread_key)] (mod p)``.

        Args:
            level: the row (``lsb(h1(item))``, clamped by the caller).
            column: the column (``h3(h2(item))``).
            spread_key: the value ``h2(item)`` fed to ``h4`` to select the
                weight; using ``h2``'s output (not the raw item) matches the
                paper's ``u_{h4(h2(i))}``.
            delta: the signed frequency change.
        """
        if not 0 <= level < self.levels:
            raise ParameterError("level %d outside [0, %d)" % (level, self.levels))
        if not 0 <= column < self.bins:
            raise ParameterError("column %d outside [0, %d)" % (column, self.bins))
        weight = self._weights[self._h4(spread_key % self._h4.universe_size)]
        row = self._cells[level]
        old = row[column]
        new = (old + delta * weight) % self.prime
        if old == 0 and new != 0:
            self._nonzero_per_row[level] += 1
        elif old != 0 and new == 0:
            self._nonzero_per_row[level] -= 1
        row[column] = new

    def update_many(self, levels, columns, spread_keys, deltas) -> None:
        """Apply a whole batch of fingerprint updates in vectorized passes.

        The bulk form of :meth:`update`, and the inner loop of every
        turnstile ``update_batch``: one batched ``h4`` evaluation selects
        the weights, one exact batched multiply
        (:func:`repro.vectorize.mulmod_arrays`) forms the per-update
        contributions ``delta * u[h4(h2(i))] mod p``, and the
        contributions are scatter-summed per touched cell
        (:func:`repro.vectorize.grouped_residue_sums`) so each cell pays
        one exact ``% p`` fold regardless of how many updates hit it.
        Cell arithmetic is additive modulo ``p``, so the result is
        bit-identical to the scalar loop in any order.

        Args:
            levels: ``int64`` array of rows (already clamped by the caller,
                as in the scalar path).
            columns: array of columns in ``[0, bins)``.
            spread_keys: the ``h2(item)`` values feeding ``h4``.
            deltas: signed frequency changes (``int64`` or object array).
        """
        require_numpy("FingerprintMatrix.update_many")
        count = len(levels)
        if count == 0:
            return
        prime = self.prime
        weight_keys = mod_range(spread_keys, self._h4.universe_size)
        weight_index = self._h4.hash_batch_validated(weight_keys)
        if weight_index.dtype == object:
            weight_index = weight_index.astype(np.int64)
        else:
            weight_index = weight_index.astype(np.int64, copy=False)
        residues = residues_mod(deltas, prime)
        delta_values, delta_rank = np.unique(residues, return_inverse=True)
        if len(delta_values) <= _DELTA_TABLE_LIMIT and prime < (1 << 63):
            # Real turnstile streams carry a handful of distinct deltas
            # (usually just +1/-1), so the ``delta * u[j] mod p`` products
            # collapse to a ``bins x distinct-deltas`` table of exact
            # Python-int multiplies, gathered back over the batch — this
            # keeps even the large Lemma 6 primes (beyond the word-level
            # Barrett range) entirely in ``uint64`` lanes.
            span = len(delta_values)
            key = tuple(int(value) for value in delta_values.tolist())
            memo = _WEIGHT_TABLE_MEMO.get(self)
            if memo is not None and memo[0] is self._weights and memo[1:3] == (
                prime,
                key,
            ):
                table = memo[3]
            else:
                table = np.empty(self.bins * span, dtype=np.uint64)
                table[:] = [
                    (weight * value) % prime
                    for weight in self._weights
                    for value in key
                ]
                _WEIGHT_TABLE_MEMO[self] = (self._weights, prime, key, table)
            contributions = table[weight_index * span + delta_rank]
        else:
            if prime < (1 << 63):
                weights = np.asarray(self._weights, dtype=np.uint64)
            else:  # pragma: no cover - primes this large need object arithmetic
                weights = np.empty(len(self._weights), dtype=object)
                weights[:] = self._weights
            contributions = mulmod_arrays(
                weights[weight_index], residues, prime, prime
            )
        if columns.dtype == object:
            columns = columns.astype(np.int64)
        cells = np.asarray(levels, dtype=np.int64) * np.int64(self.bins) + columns.astype(
            np.int64, copy=False
        )
        touched, inverse = np.unique(cells, return_inverse=True)
        totals = grouped_residue_sums(inverse, len(touched), contributions, prime)
        bins = self.bins
        for cell, total in zip(touched.tolist(), totals):
            level, column = divmod(int(cell), bins)
            row = self._cells[level]
            old = row[column]
            new = (old + total) % prime
            if old == 0 and new != 0:
                self._nonzero_per_row[level] += 1
            elif old != 0 and new == 0:
                self._nonzero_per_row[level] -= 1
            row[column] = new

    def merge(self, other: "FingerprintMatrix") -> None:
        """Add another same-construction matrix into this one, cell-wise.

        Fingerprint counters are *linear*: each cell is a sum over the
        updates hashed to it modulo ``p``, so two matrices built with the
        same randomness (prime, weight vector, ``h4``) and fed disjoint
        streams combine by cell-wise modular addition into exactly the
        matrix one instance would hold after the concatenated stream.
        """
        if not isinstance(other, FingerprintMatrix):
            raise MergeError("can only merge FingerprintMatrix with its own kind")
        if (
            other.levels != self.levels
            or other.bins != self.bins
            or other.prime != self.prime
            or other._weights != self._weights
        ):
            raise MergeError(
                "FingerprintMatrix merge requires identical shape, prime, and weights"
            )
        prime = self.prime
        for level in range(self.levels):
            mine, theirs = self._cells[level], other._cells[level]
            merged = [(a + b) % prime for a, b in zip(mine, theirs)]
            self._cells[level] = merged
            self._nonzero_per_row[level] = sum(1 for value in merged if value)

    def clear(self) -> None:
        """Zero every cell, keeping the prime, weights, and ``h4``."""
        self._cells = [[0] * self.bins for _ in range(self.levels)]
        self._nonzero_per_row = [0] * self.levels

    def is_occupied(self, level: int, column: int) -> bool:
        """Return True when the cell's fingerprint is non-zero."""
        return self._cells[level][column] != 0

    def row_occupancy(self, level: int) -> int:
        """Return the number of non-zero cells in ``level`` (O(1), maintained)."""
        if not 0 <= level < self.levels:
            raise ParameterError("level %d outside [0, %d)" % (level, self.levels))
        return self._nonzero_per_row[level]

    def occupancies(self) -> List[int]:
        """Return the per-row non-zero cell counts."""
        return list(self._nonzero_per_row)

    def space_breakdown(self) -> SpaceBreakdown:
        """Return the itemised space cost.

        Each cell and each weight is an element of ``F_p``
        (``ceil(log2 p)`` bits); ``h4`` adds its two field elements.
        """
        breakdown = SpaceBreakdown("fingerprint-matrix")
        cell_bits = max(self.prime.bit_length(), 1)
        breakdown.add("cells", self.levels * self.bins * cell_bits)
        breakdown.add("weight-vector-u", self.bins * cell_bits)
        breakdown.add_component("h4", self._h4)
        breakdown.add("prime-p", cell_bits)
        return breakdown

    def space_bits(self) -> int:
        """Return the matrix's total space in bits."""
        return self.space_breakdown().total()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            "FingerprintMatrix(levels=%d, bins=%d, prime=%d)"
            % (self.levels, self.bins, self.prime)
        )
