"""Fingerprint counters over ``F_p`` for the L0 bit-matrix (Lemma 6).

For L0 estimation the Figure 4 bitmatrix cannot store plain bits: an item
inserted and later deleted must stop counting, and two items of opposite
sign hashed to the same cell must not cancel to a false "empty".  Lemma 6
replaces each bit ``A[i][j]`` by a counter

    ``B[i][j] = sum over items hashed to the cell of  x_item * u[h4(h2(item))]  (mod p)``

where ``u`` is a random vector over ``F_p``, ``h4`` is pairwise
independent, and ``p`` is a random prime in ``[D, D^3]`` with
``D = 100 K log(mM)``.  The cell is interpreted as "occupied" iff the
counter is non-zero; the paper shows this interpretation recovers the row
the estimator needs with probability 2/3 (amplifiable).

Each counter occupies ``O(log K + log log(mM))`` bits, which is where
Theorem 10's space bound comes from.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from ..bitstructs.space import SpaceBreakdown
from ..exceptions import ParameterError
from ..hashing.primes import random_prime
from ..hashing.universal import PairwiseHash

__all__ = ["FingerprintMatrix", "choose_fingerprint_prime"]


def choose_fingerprint_prime(
    bins: int, magnitude_bound: int, rng: Optional[random.Random] = None
) -> int:
    """Pick the random prime ``p`` of Lemma 6.

    Args:
        bins: the number of columns ``K``.
        magnitude_bound: an upper bound on ``mM`` (the largest possible
            absolute frequency of any item at any time).
        rng: source of randomness.

    Returns:
        A prime in ``[D, D^3]`` for ``D = 100 K log2(mM)``.
    """
    if bins <= 0:
        raise ParameterError("bins must be positive")
    if magnitude_bound < 1:
        raise ParameterError("magnitude_bound must be at least 1")
    log_mm = max(math.log2(max(magnitude_bound, 2)), 1.0)
    lower = max(int(100 * bins * log_mm), 7)
    upper = lower ** 3
    return random_prime(lower, upper, rng=rng)


class FingerprintMatrix:
    """A ``levels x bins`` matrix of F_p fingerprint counters.

    Attributes:
        levels: number of subsampling levels (rows), typically ``log2(n)+1``.
        bins: number of columns ``K``.
        prime: the modulus ``p``.
    """

    def __init__(
        self,
        levels: int,
        bins: int,
        magnitude_bound: int,
        seed: Optional[int] = None,
        prime: Optional[int] = None,
    ) -> None:
        """Create the matrix.

        Args:
            levels: number of rows; must be positive.
            bins: number of columns ``K``; must be positive.
            magnitude_bound: upper bound on ``mM`` used to size the prime.
            seed: RNG seed for the prime, the random vector ``u`` and ``h4``.
            prime: explicit modulus override (tests use small primes to
                exercise the false-negative path deliberately).
        """
        if levels <= 0:
            raise ParameterError("levels must be positive")
        if bins <= 0:
            raise ParameterError("bins must be positive")
        rng = random.Random(seed)
        self.levels = levels
        self.bins = bins
        self.magnitude_bound = magnitude_bound
        self.prime = prime if prime is not None else choose_fingerprint_prime(
            bins, magnitude_bound, rng=rng
        )
        if self.prime < 2:
            raise ParameterError("prime must be at least 2")
        # The random weight vector u in F_p^K and the collision-breaking h4.
        self._weights: List[int] = [rng.randrange(1, self.prime) for _ in range(bins)]
        self._h4 = PairwiseHash(max(bins ** 3, bins), bins, rng=rng)
        self._cells: List[List[int]] = [[0] * bins for _ in range(levels)]
        self._nonzero_per_row: List[int] = [0] * levels

    def update(self, level: int, column: int, spread_key: int, delta: int) -> None:
        """Apply ``B[level][column] += delta * u[h4(spread_key)] (mod p)``.

        Args:
            level: the row (``lsb(h1(item))``, clamped by the caller).
            column: the column (``h3(h2(item))``).
            spread_key: the value ``h2(item)`` fed to ``h4`` to select the
                weight; using ``h2``'s output (not the raw item) matches the
                paper's ``u_{h4(h2(i))}``.
            delta: the signed frequency change.
        """
        if not 0 <= level < self.levels:
            raise ParameterError("level %d outside [0, %d)" % (level, self.levels))
        if not 0 <= column < self.bins:
            raise ParameterError("column %d outside [0, %d)" % (column, self.bins))
        weight = self._weights[self._h4(spread_key % self._h4.universe_size)]
        row = self._cells[level]
        old = row[column]
        new = (old + delta * weight) % self.prime
        if old == 0 and new != 0:
            self._nonzero_per_row[level] += 1
        elif old != 0 and new == 0:
            self._nonzero_per_row[level] -= 1
        row[column] = new

    def is_occupied(self, level: int, column: int) -> bool:
        """Return True when the cell's fingerprint is non-zero."""
        return self._cells[level][column] != 0

    def row_occupancy(self, level: int) -> int:
        """Return the number of non-zero cells in ``level`` (O(1), maintained)."""
        if not 0 <= level < self.levels:
            raise ParameterError("level %d outside [0, %d)" % (level, self.levels))
        return self._nonzero_per_row[level]

    def occupancies(self) -> List[int]:
        """Return the per-row non-zero cell counts."""
        return list(self._nonzero_per_row)

    def space_breakdown(self) -> SpaceBreakdown:
        """Return the itemised space cost.

        Each cell and each weight is an element of ``F_p``
        (``ceil(log2 p)`` bits); ``h4`` adds its two field elements.
        """
        breakdown = SpaceBreakdown("fingerprint-matrix")
        cell_bits = max(self.prime.bit_length(), 1)
        breakdown.add("cells", self.levels * self.bins * cell_bits)
        breakdown.add("weight-vector-u", self.bins * cell_bits)
        breakdown.add_component("h4", self._h4)
        breakdown.add("prime-p", cell_bits)
        return breakdown

    def space_bits(self) -> int:
        """Return the matrix's total space in bits."""
        return self.space_breakdown().total()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            "FingerprintMatrix(levels=%d, bins=%d, prime=%d)"
            % (self.levels, self.bins, self.prime)
        )
