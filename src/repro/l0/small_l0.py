"""Exact recovery of small L0 values (Lemma 8).

When the Hamming norm is promised to be at most a constant ``c``, it can be
computed *exactly* with probability ``1 - delta`` in
``O(c^2 log log(mM))`` bits: hash the universe pairwise-independently into
``Theta(c^2)`` buckets, keep each bucket's frequency sum modulo a random
prime ``p = Theta(log(mM) log log(mM))``, and report the number of
non-zero buckets; repeat ``O(log(1/delta))`` times and take the maximum.

Two failure sources exist and both are handled as in the paper:

* a collision of two live items in one bucket (probability ``O(1/c)`` per
  pair, driven down by the ``c^2`` buckets and the max-over-trials);
* a live item's frequency being divisible by ``p`` (probability
  ``O(1/ log(mM))`` per item by the prime's size, also absorbed by the
  trials).

RoughL0Estimator (Appendix A.3) runs one instance of this structure per
subsampling level, sharing the trial hash functions across levels exactly
as the paper prescribes.
"""

from __future__ import annotations

import math
import random

from ..hashing.entropy import fresh_rng
from typing import List, Optional, Sequence

from ..bitstructs.space import SpaceBreakdown
from ..estimators.base import ItemBatch, TurnstileEstimator
from ..exceptions import MergeError, ParameterError
from ..hashing.primes import random_prime
from ..hashing.universal import PairwiseHash
from ..vectorize import (
    HAS_NUMPY,
    as_delta_array,
    as_key_array,
    grouped_residue_sums,
    np,
    residues_mod,
)

__all__ = ["SmallL0Recovery", "make_trial_hashes", "choose_small_prime"]


def choose_small_prime(magnitude_bound: int, rng: Optional[random.Random] = None) -> int:
    """Pick the Lemma 8 prime ``p = Theta(log(mM) log log(mM))``."""
    if magnitude_bound < 1:
        raise ParameterError("magnitude_bound must be at least 1")
    log_mm = max(math.log2(max(magnitude_bound, 4)), 2.0)
    loglog_mm = max(math.log2(log_mm), 1.0)
    lower = max(int(log_mm * loglog_mm), 5)
    return random_prime(lower, max(lower * 8, lower + 16), rng=rng)


def make_trial_hashes(
    universe_size: int,
    buckets: int,
    trials: int,
    rng: Optional[random.Random] = None,
) -> List[PairwiseHash]:
    """Draw the ``O(log(1/delta))`` shared pairwise hash functions.

    RoughL0Estimator shares one list of these across all of its per-level
    instances, so they are created by this standalone factory rather than
    inside :class:`SmallL0Recovery`.
    """
    if trials <= 0:
        raise ParameterError("trials must be positive")
    rng = fresh_rng(rng)
    return [PairwiseHash(universe_size, buckets, rng=rng) for _ in range(trials)]


def trials_for_failure_probability(delta: float) -> int:
    """Return ``O(log(1/delta))`` trials (at least 2)."""
    if not 0.0 < delta < 1.0:
        raise ParameterError("delta must lie in (0, 1)")
    return max(2, int(math.ceil(math.log2(1.0 / delta))) + 1)


class SmallL0Recovery(TurnstileEstimator):
    """Exact L0 under the promise ``L0 <= capacity`` (Lemma 8).

    Attributes:
        capacity: the promised upper bound ``c`` on L0.
        buckets: number of counters per trial (``capacity^2`` by default).
        trials: number of independent repetitions (max is reported).
    """

    name = "knw-small-l0"
    requires_nonnegative_frequencies = False

    def __init__(
        self,
        universe_size: int,
        capacity: int,
        magnitude_bound: int,
        delta: float = 1.0 / 16.0,
        seed: Optional[int] = None,
        trial_hashes: Optional[Sequence[PairwiseHash]] = None,
        prime: Optional[int] = None,
        buckets: Optional[int] = None,
    ) -> None:
        """Create the structure.

        Args:
            universe_size: the universe size ``n``.
            capacity: the promise ``c`` (the paper's RoughL0Estimator uses 141).
            magnitude_bound: upper bound on ``mM`` used to size the prime.
            delta: per-instance failure probability (sets the trial count
                when ``trial_hashes`` is not supplied).
            seed: RNG seed.
            trial_hashes: externally shared pairwise hash functions (one per
                trial); when given their space is charged to the sharer.
            prime: explicit modulus override (tests).
            buckets: explicit bucket-count override (defaults to
                ``capacity^2``).
        """
        if universe_size < 2:
            raise ParameterError("universe_size must be at least 2")
        if capacity <= 0:
            raise ParameterError("capacity must be positive")
        rng = random.Random(seed)
        self.universe_size = universe_size
        self.capacity = capacity
        self.magnitude_bound = magnitude_bound
        self.seed = seed
        self.buckets = buckets if buckets is not None else capacity * capacity
        self.prime = prime if prime is not None else choose_small_prime(
            magnitude_bound, rng=rng
        )
        self._owns_hashes = trial_hashes is None
        if trial_hashes is None:
            trial_count = trials_for_failure_probability(delta)
            trial_hashes = make_trial_hashes(
                universe_size, self.buckets, trial_count, rng=rng
            )
        else:
            for hash_function in trial_hashes:
                if hash_function.range_size != self.buckets:
                    raise ParameterError(
                        "shared trial hashes must map into the bucket range"
                    )
        self._hashes: Sequence[PairwiseHash] = trial_hashes
        self.trials = len(self._hashes)
        self._counters: List[List[int]] = [
            [0] * self.buckets for _ in range(self.trials)
        ]
        self._nonzero: List[int] = [0] * self.trials

    def update(self, item: int, delta: int) -> None:
        """Apply ``x_item += delta`` to every trial's bucket array."""
        if not 0 <= item < self.universe_size:
            raise ParameterError(
                "item %d outside universe [0, %d)" % (item, self.universe_size)
            )
        for trial, hash_function in enumerate(self._hashes):
            bucket = hash_function(item)
            row = self._counters[trial]
            old = row[bucket]
            new = (old + delta) % self.prime
            if old == 0 and new != 0:
                self._nonzero[trial] += 1
            elif old != 0 and new == 0:
                self._nonzero[trial] -= 1
            row[bucket] = new

    def update_batch(self, items: ItemBatch, deltas: ItemBatch) -> None:
        """Apply a chunk of signed updates through vectorized passes.

        One batched hash evaluation per trial replaces ``trials`` Python
        hash calls per update, and each trial's bucket deltas are
        scatter-summed once per touched bucket
        (:func:`repro.vectorize.grouped_residue_sums`).  Bucket counters
        are additive modulo the trial prime, so the state is bit-identical
        to the scalar loop; the whole batch is validated before any trial
        is mutated.
        """
        if not HAS_NUMPY:  # pragma: no cover - numpy is a declared dependency
            return super().update_batch(items, deltas)
        keys = as_key_array(items, self.universe_size)
        deltas = as_delta_array(deltas, expected_length=len(keys))
        if keys.size == 0:
            return
        prime = self.prime
        residues = residues_mod(deltas, prime)
        self._apply_residues(keys, residues)

    def _apply_residues(self, keys, residues) -> None:
        """Scatter pre-reduced per-update residues into every trial.

        Batches that blanket the bucket array take a *dense* path — one
        ``np.add.at`` scatter into a full-width accumulator, one
        vectorized ``(row + sums) % p`` fold, one ``count_nonzero`` —
        while small batches keep the sparse per-touched-bucket fold.
        Both are exact (the dense path is guarded so no ``uint64`` lane
        can overflow) and bit-identical to the scalar loop.
        """
        prime = self.prime
        dense = (
            residues.dtype != object
            # Bucket sums stay below len * prime and the fold below
            # 2^63 + prime, so uint64 lanes cannot overflow.
            and prime < (1 << 31)
            and len(keys) < (1 << 31)
            and 2 * len(keys) >= self.buckets
        )
        for trial, hash_function in enumerate(self._hashes):
            buckets = hash_function.hash_batch_validated(keys)
            if buckets.dtype == object:
                buckets = buckets.astype(np.int64)
            if dense:
                sums = np.zeros(self.buckets, dtype=np.uint64)
                np.add.at(sums, buckets, residues)
                row = np.asarray(self._counters[trial], dtype=np.uint64)
                merged = (row + sums) % np.uint64(prime)
                self._counters[trial] = [int(value) for value in merged.tolist()]
                self._nonzero[trial] = int(np.count_nonzero(merged))
                continue
            touched, inverse = np.unique(buckets, return_inverse=True)
            totals = grouped_residue_sums(inverse, len(touched), residues, prime)
            row = self._counters[trial]
            nonzero = self._nonzero[trial]
            for bucket, total in zip(touched.tolist(), totals):
                bucket = int(bucket)
                old = row[bucket]
                new = (old + total) % prime
                if old == 0 and new != 0:
                    nonzero += 1
                elif old != 0 and new == 0:
                    nonzero -= 1
                row[bucket] = new
            self._nonzero[trial] = nonzero

    def merge(self, other: "TurnstileEstimator") -> None:
        """Add another same-randomness recovery structure into this one.

        The bucket counters are linear (sums of deltas modulo the trial
        prime), so counter-wise modular addition of two structures built
        with the same prime and trial hashes — and fed disjoint streams —
        reproduces exactly the structure one instance would hold after
        the concatenated stream.
        """
        if not isinstance(other, SmallL0Recovery):
            raise MergeError("can only merge SmallL0Recovery with its own kind")
        if (
            other.universe_size != self.universe_size
            or other.capacity != self.capacity
            or other.buckets != self.buckets
            or other.prime != self.prime
            or other.trials != self.trials
            or any(
                (a._a, a._b, a._prime) != (b._a, b._b, b._prime)
                for a, b in zip(self._hashes, other._hashes)
            )
        ):
            raise MergeError(
                "SmallL0Recovery merge requires identical parameters and hashes"
            )
        prime = self.prime
        for trial in range(self.trials):
            mine, theirs = self._counters[trial], other._counters[trial]
            merged = [(a + b) % prime for a, b in zip(mine, theirs)]
            self._counters[trial] = merged
            self._nonzero[trial] = sum(1 for value in merged if value)

    def clear(self) -> None:
        """Zero every bucket counter, keeping the prime and trial hashes."""
        self._counters = [[0] * self.buckets for _ in range(self.trials)]
        self._nonzero = [0] * self.trials

    def estimate(self) -> float:
        """Return the maximum non-zero-bucket count across trials.

        Under the promise ``L0 <= capacity`` this equals L0 exactly with
        probability at least ``1 - delta``; without the promise it is a
        lower bound on L0 (collisions and wrap-around can only reduce the
        count), which is exactly the property RoughL0Estimator relies on
        when it thresholds the value at a constant.
        """
        return float(max(self._nonzero))

    def exceeds(self, threshold: int) -> bool:
        """Return True when the recovered count exceeds ``threshold``."""
        return max(self._nonzero) > threshold

    def space_breakdown(self) -> SpaceBreakdown:
        """Return the itemised space cost."""
        breakdown = SpaceBreakdown(self.name)
        counter_bits = max(self.prime.bit_length(), 1)
        breakdown.add("bucket-counters", self.trials * self.buckets * counter_bits)
        breakdown.add("prime", counter_bits)
        if self._owns_hashes:
            for index, hash_function in enumerate(self._hashes):
                breakdown.add("trial-hash-%d" % index, hash_function.space_bits())
        return breakdown

    def space_bits(self) -> int:
        """Return the structure's total space in bits."""
        return self.space_breakdown().total()
