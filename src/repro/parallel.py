"""Sharded multi-process ingestion: partition, worker ingest, merge-reduce.

This is the distributed-deployment shape the paper's introduction
motivates (union of streams observed at many points) realised on one
machine: a materialized stream is partitioned into contiguous shards,
each shard is ingested by a worker *process* through the vectorized
``update_batch`` pipeline into a same-seed sketch, the worker ships its
sketch back as serialized state (:mod:`repro.serialize` — no pickle of
live objects), and the coordinator revives and merge-reduces the shard
sketches into one.

Correctness contract.  For every estimator that supports :meth:`merge
<repro.estimators.base.CardinalityEstimator.merge>`, shard-and-merge is
*estimate-equivalent* to sequential ingestion; for estimators whose hash
functions are fully seed-determined (``shard_deterministic`` on the
estimator — everything except the lazily materialised Lemma 5 uniform
family configurations) it is **bit-identical**: the merged sketch's
state and estimate equal those of a single sketch fed the concatenated
stream, for any shard count.  The per-counter reductions are maxima,
ORs, and set unions — commutative, associative, and idempotent — which
also makes the engine safe to use *mid-stream*: the template sketch's
existing state is cloned into every worker and re-merging it is a
no-op.

Execution modes:

* ``"processes"`` — a :class:`concurrent.futures.ProcessPoolExecutor`
  with ``workers`` processes; the wall-clock win on multi-core hosts
  (see ``benchmarks/bench_parallel_ingest.py``).
* ``"inline"`` — the identical shard / serialize / revive / merge
  dataflow run in-process.  Results are byte-for-byte the same; used for
  ``workers=1``, for tests, and on single-core machines where process
  fan-out cannot pay for itself.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from . import serialize
from .estimators.base import CardinalityEstimator, TurnstileEstimator
from .estimators.registry import (
    f0_algorithm_names,
    l0_algorithm_names,
    make_f0_estimator,
    make_l0_estimator,
)
from .exceptions import ParameterError, UpdateError
from .streams.model import MaterializedStream
from .vectorize import HAS_NUMPY, np

__all__ = [
    "DEFAULT_SHARD_BATCH",
    "shard_items",
    "shard_updates",
    "shard_keyed_updates",
    "shard_epoch_slices",
    "parallel_merge_shards",
    "parallel_merge_update_shards",
    "parallel_ingest_into",
    "parallel_ingest_updates_into",
    "parallel_ingest_f0",
    "parallel_ingest_l0",
    "parallel_ingest_keyed",
    "parallel_ingest_windowed",
    "parallel_ingest_windowed_keyed",
    "mergeable_f0_names",
    "mergeable_l0_names",
    "default_workers",
]

#: Chunk length used when workers drive shards through ``update_batch``.
DEFAULT_SHARD_BATCH = 65536

ItemSource = Union[MaterializedStream, Sequence[int], "np.ndarray"]


def default_workers() -> int:
    """Return the default worker count: the machine's CPU count."""
    return max(os.cpu_count() or 1, 1)


def _as_items(source: ItemSource):
    """Return the item identifiers of ``source`` as an array (or sequence)."""
    if isinstance(source, MaterializedStream):
        if not source.is_insertion_only():
            raise ParameterError(
                "item sharding is defined for insertion-only streams; "
                "use shard_updates / parallel_merge_update_shards for "
                "turnstile streams"
            )
        return source.item_array()
    if HAS_NUMPY and not isinstance(source, np.ndarray):
        return np.asarray(source)
    return source


def shard_items(items: ItemSource, shards: int) -> List[Any]:
    """Partition a stream's items into ``shards`` contiguous slices.

    Contiguity matters only for human inspection — every merge-reduced
    reduction in the library is order-insensitive — but contiguous
    slices of the cached item array are NumPy views, so sharding never
    copies the stream.  Trailing shards may be one item shorter; with
    fewer items than shards, the surplus shards are empty.

    Args:
        items: a materialized insertion-only stream, or the identifiers
            themselves (sequence or ndarray).
        shards: positive shard count.
    """
    if shards <= 0:
        raise ParameterError("shard count must be positive")
    data = _as_items(items)
    total = len(data)
    base, surplus = divmod(total, shards)
    slices: List[Any] = []
    start = 0
    for index in range(shards):
        length = base + (1 if index < surplus else 0)
        slices.append(data[start : start + length])
        start += length
    return slices


def _supports_merge(estimator) -> bool:
    if isinstance(estimator, TurnstileEstimator):
        return type(estimator).merge is not TurnstileEstimator.merge
    return type(estimator).merge is not CardinalityEstimator.merge


def _require_explicit_seed(estimator: CardinalityEstimator) -> None:
    """Refuse seedless sketches up front, before any shard work is spent.

    Plain sketches carry a ``seed`` attribute; amplification wrappers
    carry none but expose their ``copies``, whose seeds determine merge
    compatibility — check whichever is present.
    """
    seedless = getattr(estimator, "seed", 0) is None or any(
        getattr(copy, "seed", 0) is None
        for copy in getattr(estimator, "copies", ())
    )
    if seedless:
        raise ParameterError(
            "sharded ingestion needs an explicit seed so the shard sketches "
            "share hash functions; construct the estimator with seed=..."
        )


def _feed(estimator: CardinalityEstimator, shard, batch_size: Optional[int]) -> None:
    if batch_size is None:
        values = shard.tolist() if hasattr(shard, "tolist") else shard
        for item in values:
            estimator.update(int(item))
        return
    if batch_size <= 0:
        raise ParameterError("batch_size must be positive")
    for start in range(0, len(shard), batch_size):
        estimator.update_batch(shard[start : start + batch_size])


def _ingest_shard_worker(payload: Tuple[bytes, Any, Optional[int]]) -> bytes:
    """Worker body: revive the template, ingest one shard, ship the state.

    Module-level so the process pool can import it by reference; the
    payload and the result are plain picklable values (bytes + array).
    """
    template, shard, batch_size = payload
    estimator = serialize.loads(template)
    _feed(estimator, shard, batch_size)
    return estimator.to_bytes()


def parallel_merge_shards(
    estimator: CardinalityEstimator,
    shards: Sequence[Any],
    workers: Optional[int] = None,
    batch_size: Optional[int] = DEFAULT_SHARD_BATCH,
    execution: Optional[str] = None,
    executor: Optional[Executor] = None,
) -> CardinalityEstimator:
    """Ingest caller-partitioned shards into ``estimator`` via merge-reduce.

    Each shard (an integer array — e.g. one network link's traffic, one
    table partition's column values) is ingested by a worker into a
    clone of ``estimator``'s current state; the resulting sketches are
    revived and merged back into ``estimator`` in shard order.

    Args:
        estimator: the target sketch.  Must support merging (and so must
            have been built with an explicit seed) unless there are zero
            or one non-empty shards, in which case the engine feeds it
            directly.
        shards: the partition, as produced by :func:`shard_items` or by
            the caller's own sharding (per-link, per-partition, ...).
        workers: process count for the ``"processes"`` mode; defaults to
            the CPU count, capped at the number of non-empty shards.
        batch_size: chunk length for the workers' ``update_batch``
            driving; ``None`` forces the scalar per-item loop (the
            shard/merge result is identical either way, by the batch
            equivalence contract).
        execution: ``"processes"``, ``"inline"``, or ``None`` to pick
            ``"processes"`` exactly when more than one worker can do
            useful work.
        executor: an existing :class:`concurrent.futures.Executor` to
            submit shard work to instead of spawning a pool per call —
            callers issuing many sharded ingests (per-checkpoint
            segments, per-window fields) amortise pool startup this way.
            The caller keeps ownership (it is not shut down here) and
            ``workers``/``execution`` are ignored when it is given.

    Returns:
        ``estimator`` (mutated in place), for chaining.
    """
    work = [shard for shard in shards if len(shard) > 0]
    if not work:
        return estimator
    if len(work) == 1:
        _feed(estimator, work[0], batch_size)
        return estimator
    if not _supports_merge(estimator):
        raise ParameterError(
            "%s does not support merge; sharded ingestion needs a mergeable sketch"
            % type(estimator).__name__
        )
    _require_explicit_seed(estimator)

    template = estimator.to_bytes()
    payloads = [(template, shard, batch_size) for shard in work]
    if executor is not None:
        blobs = list(executor.map(_ingest_shard_worker, payloads))
    else:
        if workers is None:
            workers = default_workers()
        if workers <= 0:
            raise ParameterError("workers must be positive")
        workers = min(workers, len(work))
        if execution is None:
            execution = "processes" if workers > 1 else "inline"
        if execution not in ("processes", "inline"):
            raise ParameterError("execution must be 'processes' or 'inline'")
        if execution == "processes":
            with ProcessPoolExecutor(max_workers=workers) as pool:
                blobs = list(pool.map(_ingest_shard_worker, payloads))
        else:
            blobs = [_ingest_shard_worker(payload) for payload in payloads]
    for blob in blobs:
        estimator.merge(serialize.loads(blob))
    return estimator


def parallel_ingest_into(
    estimator: CardinalityEstimator,
    items: ItemSource,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    batch_size: Optional[int] = DEFAULT_SHARD_BATCH,
    execution: Optional[str] = None,
    executor: Optional[Executor] = None,
) -> CardinalityEstimator:
    """Shard ``items`` and ingest them into ``estimator`` (see above).

    Equivalent to ``parallel_merge_shards(estimator, shard_items(items,
    shards or workers), ...)``; the one-shard case degenerates to a
    plain batched feed, so ``workers=1`` has no multiprocessing
    overhead and is byte-identical to calling ``update_batch`` yourself.
    """
    if workers is None and shards is None:
        workers = default_workers()
    count = shards if shards is not None else workers
    return parallel_merge_shards(
        estimator,
        shard_items(items, count),
        workers=workers,
        batch_size=batch_size,
        execution=execution,
        executor=executor,
    )


def parallel_ingest_f0(
    algorithm: str,
    stream: ItemSource,
    eps: float,
    seed: int,
    universe_size: Optional[int] = None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    batch_size: Optional[int] = DEFAULT_SHARD_BATCH,
    execution: Optional[str] = None,
) -> CardinalityEstimator:
    """Build a registered F0 estimator and ingest a stream sharded.

    Args:
        algorithm: registry name (see :func:`repro.estimators.registry
            .f0_algorithm_names`).
        stream: a materialized insertion-only stream, or raw identifiers
            (then ``universe_size`` is required).
        eps: target relative error.
        seed: estimator seed; must be explicit — the shard sketches
            derive identical hash functions from it.
        universe_size: universe bound when ``stream`` is a raw sequence.
        workers / shards / batch_size / execution: as in
            :func:`parallel_ingest_into`.

    Returns:
        The merged estimator (call ``estimate()`` on it).
    """
    if seed is None:
        raise ParameterError("parallel_ingest_f0 requires an explicit seed")
    if isinstance(stream, MaterializedStream):
        universe_size = stream.universe_size
    elif universe_size is None:
        raise ParameterError("universe_size is required for raw item sequences")
    estimator = make_f0_estimator(algorithm, universe_size, eps, seed)
    return parallel_ingest_into(
        estimator,
        stream,
        workers=workers,
        shards=shards,
        batch_size=batch_size,
        execution=execution,
    )


# ---------------------------------------------------------------------------
# Turnstile (L0) sharded ingestion.
#
# The library's L0 sketches are *linear*: every counter is a sum of deltas
# modulo a fixed prime, and all hash functions are drawn eagerly at
# construction.  Same-seed sketches fed disjoint update shards therefore
# merge (counter-wise modular addition) into exactly the sketch one
# instance would hold after the concatenated stream — the same
# shard / worker-ingest / serialized-transport / merge-reduce dataflow as
# the F0 engine, now for signed ``(item, delta)`` updates.
# ---------------------------------------------------------------------------

UpdateShard = Tuple[Any, Any]


def _as_update_arrays(source) -> UpdateShard:
    """Return ``(items, deltas)`` arrays for a turnstile source."""
    if isinstance(source, MaterializedStream):
        return source.item_array(), source.delta_array()
    items, deltas = source
    if HAS_NUMPY:
        if not isinstance(items, np.ndarray):
            items = np.asarray(items)
        if not isinstance(deltas, np.ndarray):
            deltas = np.asarray(deltas)
    if len(items) != len(deltas):
        raise ParameterError("turnstile sources need as many deltas as items")
    return items, deltas


def shard_updates(source, shards: int) -> List[UpdateShard]:
    """Partition a turnstile stream into ``shards`` contiguous update slices.

    The L0 counterpart of :func:`shard_items`: each shard is an
    ``(items, deltas)`` pair of aligned slices (NumPy views — sharding
    never copies the stream).

    Args:
        source: a materialized stream, or an ``(items, deltas)`` pair of
            aligned integer sequences/arrays.
        shards: positive shard count.
    """
    if shards <= 0:
        raise ParameterError("shard count must be positive")
    items, deltas = _as_update_arrays(source)
    total = len(items)
    base, surplus = divmod(total, shards)
    slices: List[UpdateShard] = []
    start = 0
    for index in range(shards):
        length = base + (1 if index < surplus else 0)
        slices.append(
            (items[start : start + length], deltas[start : start + length])
        )
        start += length
    return slices


def _feed_updates(
    estimator: TurnstileEstimator, shard: UpdateShard, batch_size: Optional[int]
) -> None:
    items, deltas = shard
    if batch_size is None:
        item_values = items.tolist() if hasattr(items, "tolist") else items
        delta_values = deltas.tolist() if hasattr(deltas, "tolist") else deltas
        for item, delta in zip(item_values, delta_values):
            estimator.update(int(item), int(delta))
        return
    if batch_size <= 0:
        raise ParameterError("batch_size must be positive")
    for start in range(0, len(items), batch_size):
        estimator.update_batch(
            items[start : start + batch_size], deltas[start : start + batch_size]
        )


def _ingest_update_shard_worker(
    payload: Tuple[bytes, UpdateShard, Optional[int]]
) -> bytes:
    """Worker body for one turnstile shard.

    Unlike the F0 worker, the revived clone is *cleared* before ingesting:
    turnstile merges are additive (not idempotent max/OR reductions), so a
    mid-stream coordinator's prior state must be contributed exactly once
    — by the coordinator itself — not re-counted by every shard.  The
    clone still carries the template's hash randomness, which ``clear``
    preserves.
    """
    template, shard, batch_size = payload
    estimator = serialize.loads(template)
    estimator.clear()
    _feed_updates(estimator, shard, batch_size)
    return estimator.to_bytes()


def parallel_merge_update_shards(
    estimator: TurnstileEstimator,
    shards: Sequence[UpdateShard],
    workers: Optional[int] = None,
    batch_size: Optional[int] = DEFAULT_SHARD_BATCH,
    execution: Optional[str] = None,
    executor: Optional[Executor] = None,
) -> TurnstileEstimator:
    """Ingest caller-partitioned turnstile shards via merge-reduce.

    Same contract and execution modes as :func:`parallel_merge_shards`,
    for signed update shards: each ``(items, deltas)`` shard is ingested
    by a worker into an *empty* same-randomness clone of ``estimator``
    (turnstile merges are additive, so — unlike the idempotent F0
    reductions — the coordinator's existing state must enter the sum
    exactly once) through the vectorized turnstile ``update_batch``
    pipeline, and the shard sketches merge back in shard order.  For
    every library L0 sketch the result is bit-identical to sequential
    ingestion (linear sketches, eagerly drawn hashes — see
    ``TurnstileEstimator.shard_deterministic``), including mid-stream
    take-over of an already-started coordinator sketch.
    """
    work = [shard for shard in shards if len(shard[0]) > 0]
    if not work:
        return estimator
    if len(work) == 1:
        _feed_updates(estimator, work[0], batch_size)
        return estimator
    if not _supports_merge(estimator):
        raise ParameterError(
            "%s does not support merge; sharded ingestion needs a mergeable sketch"
            % type(estimator).__name__
        )
    _require_explicit_seed(estimator)

    template = estimator.to_bytes()
    payloads = [(template, shard, batch_size) for shard in work]
    if executor is not None:
        blobs = list(executor.map(_ingest_update_shard_worker, payloads))
    else:
        if workers is None:
            workers = default_workers()
        if workers <= 0:
            raise ParameterError("workers must be positive")
        workers = min(workers, len(work))
        if execution is None:
            execution = "processes" if workers > 1 else "inline"
        if execution not in ("processes", "inline"):
            raise ParameterError("execution must be 'processes' or 'inline'")
        if execution == "processes":
            with ProcessPoolExecutor(max_workers=workers) as pool:
                blobs = list(pool.map(_ingest_update_shard_worker, payloads))
        else:
            blobs = [_ingest_update_shard_worker(payload) for payload in payloads]
    for blob in blobs:
        estimator.merge(serialize.loads(blob))
    return estimator


def parallel_ingest_updates_into(
    estimator: TurnstileEstimator,
    source,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    batch_size: Optional[int] = DEFAULT_SHARD_BATCH,
    execution: Optional[str] = None,
    executor: Optional[Executor] = None,
) -> TurnstileEstimator:
    """Shard a turnstile stream and ingest it into ``estimator``.

    The L0 counterpart of :func:`parallel_ingest_into`: equivalent to
    ``parallel_merge_update_shards(estimator, shard_updates(source,
    shards or workers), ...)``, with the one-shard case degenerating to a
    plain batched feed.
    """
    if workers is None and shards is None:
        workers = default_workers()
    count = shards if shards is not None else workers
    return parallel_merge_update_shards(
        estimator,
        shard_updates(source, count),
        workers=workers,
        batch_size=batch_size,
        execution=execution,
        executor=executor,
    )


def parallel_ingest_l0(
    algorithm: str,
    source,
    eps: float,
    seed: int,
    universe_size: Optional[int] = None,
    magnitude_bound: Optional[int] = None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    batch_size: Optional[int] = DEFAULT_SHARD_BATCH,
    execution: Optional[str] = None,
) -> TurnstileEstimator:
    """Build a registered L0 estimator and ingest a turnstile stream sharded.

    Args:
        algorithm: registry name (see :func:`repro.estimators.registry
            .l0_algorithm_names`).
        source: a materialized turnstile stream, or an ``(items, deltas)``
            pair (then ``universe_size`` is required).
        eps: target relative error.
        seed: estimator seed; must be explicit so shard sketches share
            hash functions.
        universe_size: universe bound when ``source`` is a raw pair.
        magnitude_bound: upper bound on ``mM``; derived from the stream
            (``len * max|delta|``) when omitted, as in the analysis runner.
        workers / shards / batch_size / execution: as in
            :func:`parallel_ingest_into`.
    """
    if seed is None:
        raise ParameterError("parallel_ingest_l0 requires an explicit seed")
    if isinstance(source, MaterializedStream):
        universe_size = source.universe_size
        if magnitude_bound is None:
            magnitude_bound = max(len(source) * source.max_update_magnitude(), 1)
    elif universe_size is None:
        raise ParameterError("universe_size is required for raw update pairs")
    if magnitude_bound is None:
        items, deltas = _as_update_arrays(source)
        peak = max((abs(int(delta)) for delta in deltas), default=1)
        magnitude_bound = max(len(items) * peak, 1)
    estimator = make_l0_estimator(algorithm, universe_size, eps, magnitude_bound, seed)
    return parallel_ingest_updates_into(
        estimator,
        source,
        workers=workers,
        shards=shards,
        batch_size=batch_size,
        execution=execution,
    )


# ---------------------------------------------------------------------------
# Keyed (sketch-store) sharded ingestion.
#
# A SketchStore holds many per-key sketches; the natural shard axis is the
# *key space*, not the stream position: every key's updates land in exactly
# one shard, each worker builds the touched rows of its key range inside an
# empty same-seed store clone, and the coordinator adopts/merges the worker
# stores key-wise.  Because no key is split across workers, the merge-back
# is exact for max/OR families and for additive turnstile families alike.
# ---------------------------------------------------------------------------

KeyedShard = Tuple[Any, Any, Any]


def shard_keyed_updates(keys, items, deltas=None, shards: int = 1) -> List[KeyedShard]:
    """Partition a keyed batch so each key lands in exactly one shard.

    Keys are assigned to shards by sorted-key-rank ranges (``np.unique``
    rank modulo ``shards``), which balances shard sizes under skewed key
    distributions better than hashing raw key values; each shard keeps
    its updates in stream order.

    Args:
        keys: per-update integer keys (sequence or ndarray).
        items: per-update identifiers, aligned with ``keys``.
        deltas: optional signed deltas (turnstile stores).
        shards: positive shard count.

    Returns:
        ``shards`` triples ``(keys, items, deltas)`` (``deltas`` is
        ``None`` throughout when not supplied); some may be empty.
    """
    if shards <= 0:
        raise ParameterError("shard count must be positive")
    if not HAS_NUMPY:  # pragma: no cover - numpy is a declared dependency
        raise ParameterError("shard_keyed_updates requires numpy")
    key_array = np.asarray(keys)
    item_array = items if isinstance(items, np.ndarray) else np.asarray(items)
    if len(key_array) != len(item_array):
        raise ParameterError("keyed sharding needs one key per item")
    delta_array = None
    if deltas is not None:
        delta_array = deltas if isinstance(deltas, np.ndarray) else np.asarray(deltas)
        if len(delta_array) != len(item_array):
            raise ParameterError("keyed sharding needs one delta per item")
    if len(key_array) == 0:
        empty_deltas = None if delta_array is None else delta_array[:0]
        return [
            (key_array[:0], item_array[:0], empty_deltas) for _ in range(shards)
        ]
    _, inverse = np.unique(key_array, return_inverse=True)
    assignment = inverse % shards
    result: List[KeyedShard] = []
    for shard in range(shards):
        mask = assignment == shard
        result.append(
            (
                key_array[mask],
                item_array[mask],
                None if delta_array is None else delta_array[mask],
            )
        )
    return result


def _ingest_keyed_shard_worker(payload: Tuple[bytes, KeyedShard, Optional[int]]) -> bytes:
    """Worker body: revive the empty store clone, ingest one key range."""
    template, (keys, items, deltas), batch_size = payload
    store = serialize.loads(template)
    if batch_size is None:
        batch_size = len(items)
    if batch_size <= 0:
        raise ParameterError("batch_size must be positive")
    for start in range(0, len(items), batch_size):
        stop = start + batch_size
        store.update_grouped(
            keys[start:stop],
            items[start:stop],
            None if deltas is None else deltas[start:stop],
        )
    return store.to_bytes()


def parallel_ingest_keyed(
    store,
    keys,
    items,
    deltas=None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    batch_size: Optional[int] = DEFAULT_SHARD_BATCH,
    execution: Optional[str] = None,
    executor: Optional[Executor] = None,
):
    """Shard a keyed batch by key range and ingest it into ``store``.

    The :class:`~repro.store.store.SketchStore` counterpart of
    :func:`parallel_ingest_into`: the batch is partitioned with
    :func:`shard_keyed_updates`, each worker process ingests its key
    range into an *empty* clone of the store (same family, parameters,
    and seed — :meth:`~repro.store.store.SketchStore.spawn_empty`), and
    the worker stores merge back key-wise.  Every key's updates stay in
    one shard, so the merged store is exactly the store sequential
    grouped ingestion would produce — for idempotent (max/OR) families
    *and* additive turnstile families.

    Args:
        store: the target sketch store (mutated in place).
        keys / items / deltas: the keyed batch, as accepted by
            :meth:`~repro.store.store.SketchStore.update_grouped`
            (integer keys — the shard assignment sorts them).
        workers: process count; defaults to the CPU count.
        shards: shard count; defaults to ``workers``.
        batch_size: chunk length for the workers' grouped driving.
        execution: ``"processes"``, ``"inline"``, or ``None`` to pick
            automatically.
        executor: an existing pool to reuse (``workers``/``execution``
            are then ignored).

    Returns:
        ``store``, for chaining.
    """
    if workers is None and shards is None:
        workers = default_workers()
    count = shards if shards is not None else workers
    work = [
        shard
        for shard in shard_keyed_updates(keys, items, deltas, shards=count)
        if len(shard[0]) > 0
    ]
    if not work:
        return store
    if len(work) == 1:
        keys_shard, items_shard, deltas_shard = work[0]
        store.update_grouped(keys_shard, items_shard, deltas_shard)
        return store
    template = store.spawn_empty().to_bytes()
    payloads = [(template, shard, batch_size) for shard in work]
    if executor is not None:
        blobs = list(executor.map(_ingest_keyed_shard_worker, payloads))
    else:
        if workers is None:
            workers = default_workers()
        if workers <= 0:
            raise ParameterError("workers must be positive")
        workers = min(workers, len(work))
        if execution is None:
            execution = "processes" if workers > 1 else "inline"
        if execution not in ("processes", "inline"):
            raise ParameterError("execution must be 'processes' or 'inline'")
        if execution == "processes":
            with ProcessPoolExecutor(max_workers=workers) as pool:
                blobs = list(pool.map(_ingest_keyed_shard_worker, payloads))
        else:
            blobs = [_ingest_keyed_shard_worker(payload) for payload in payloads]
    for blob in blobs:
        store.merge_from(serialize.loads(blob))
    return store


# ---------------------------------------------------------------------------
# Windowed (sliding-window) sharded ingestion.
#
# A WindowedSketch / WindowedSketchStore is a ring of per-epoch sketches;
# the natural shard axis for a timestamped stream is the *epoch range*:
# contiguous groups of whole epochs go to worker processes, each worker
# builds every epoch in its range from the ring's empty epoch template
# (exactly what sequential timestamped ingestion does to its open epoch),
# and the coordinator stitches the epoch sketches back in epoch order.
# Because an epoch never spans shards, the merge-back is wholesale
# adoption of each worker's epochs — bit-identical to sequential
# ingestion for every family, keyed or not.
# ---------------------------------------------------------------------------


def shard_epoch_slices(epochs, shards: int) -> List[Tuple[int, int]]:
    """Partition a timestamped stream into epoch-aligned index ranges.

    The windowed counterpart of :func:`shard_items`: the distinct epochs
    are split into ``shards`` contiguous groups (so no epoch ever spans
    two shards) and each group maps back to one contiguous ``(start,
    stop)`` range of update indices.  With fewer epochs than shards the
    surplus ranges are empty.

    Args:
        epochs: per-update epoch numbers, non-decreasing.
        shards: positive shard count.
    """
    from .window.windowed import epoch_runs

    if shards <= 0:
        raise ParameterError("shard count must be positive")
    runs = epoch_runs(epochs)
    ranges: List[Tuple[int, int]] = []
    if not runs:
        return [(0, 0)] * shards
    groups = np.array_split(np.arange(len(runs)), shards)
    for group in groups:
        if len(group) == 0:
            ranges.append((0, 0))
        else:
            ranges.append((runs[int(group[0])][1], runs[int(group[-1])][2]))
    return ranges


def _ingest_window_shard_worker(
    payload: Tuple[str, bytes, bool, List[Tuple], Optional[int]]
) -> List[Tuple[int, bytes]]:
    """Worker body: build every epoch sketch of one epoch range.

    Each run revives the ring's empty epoch template and feeds it the
    run's updates through the shared chunking policy
    (:func:`repro.window.windowed.ingest_epoch_sketch`), so the shipped
    epoch states are byte-identical to the ones sequential ingestion
    would have built in place.
    """
    from .window.windowed import ingest_epoch_sketch, ingest_epoch_store

    kind, template, turnstile, runs, batch_size = payload
    out: List[Tuple[int, bytes]] = []
    for run in runs:
        if kind == "store":
            epoch, keys, items, deltas = run
            built = ingest_epoch_store(template, keys, items, deltas, batch_size)
        else:
            epoch, items, deltas = run
            built = ingest_epoch_sketch(
                template, items, deltas, batch_size, turnstile
            )
        out.append((int(epoch), built.to_bytes()))
    return out


def _run_window_payloads(
    payloads: List[Tuple],
    workers: Optional[int],
    execution: Optional[str],
    executor: Optional[Executor],
) -> List[List[Tuple[int, bytes]]]:
    """Fan the epoch-range payloads out (same execution modes as above)."""
    if executor is not None:
        return list(executor.map(_ingest_window_shard_worker, payloads))
    if workers is None:
        workers = default_workers()
    if workers <= 0:
        raise ParameterError("workers must be positive")
    workers = min(workers, len(payloads))
    if execution is None:
        execution = "processes" if workers > 1 else "inline"
    if execution not in ("processes", "inline"):
        raise ParameterError("execution must be 'processes' or 'inline'")
    if execution == "processes":
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_ingest_window_shard_worker, payloads))
    return [_ingest_window_shard_worker(payload) for payload in payloads]


def _window_shard_ranges(epochs, workers, shards) -> List[Tuple[int, int]]:
    if workers is None and shards is None:
        workers = default_workers()
    count = shards if shards is not None else workers
    return [
        span for span in shard_epoch_slices(epochs, count) if span[1] > span[0]
    ]


def parallel_ingest_windowed(
    window,
    epochs,
    items,
    deltas=None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    batch_size: Optional[int] = None,
    execution: Optional[str] = None,
    executor: Optional[Executor] = None,
):
    """Shard a timestamped stream by epoch range and ingest it into ``window``.

    Equivalent to ``window.ingest_timestamped(epochs, items, deltas,
    batch_size=batch_size)`` — including bit-identical epoch states,
    since every epoch is built wholly inside one shard from the ring's
    empty epoch template and adopted back in epoch order
    (:meth:`~repro.window.windowed._EpochRing.load_epoch_sketches`) —
    with the epoch construction fanned out over worker processes.

    Args:
        window: the target :class:`~repro.window.windowed.WindowedSketch`
            (mutated in place).
        epochs: one non-decreasing epoch number per update; none may
            precede the window's open epoch.
        items: identifiers, aligned with ``epochs``.
        deltas: signed deltas for turnstile families.
        workers: process count (defaults to the CPU count).
        shards: epoch-range count (defaults to ``workers``).
        batch_size: per-epoch ``update_batch`` chunk length (``None`` =
            one batch per epoch run), applied identically by sequential
            and sharded ingestion.
        execution: ``"processes"``, ``"inline"``, or ``None`` to pick
            automatically.
        executor: an existing pool to reuse (``workers``/``execution``
            are then ignored).

    Returns:
        ``window``, for chaining.
    """
    from .window.windowed import WindowedSketch, epoch_runs

    if not isinstance(window, WindowedSketch):
        raise ParameterError("parallel_ingest_windowed expects a WindowedSketch")
    if len(epochs) != len(items):
        raise ParameterError("windowed ingestion needs one epoch per update")
    # Mirror ingest_timestamped's model validation up front, so the
    # outcome does not depend on the shard count.
    if window.turnstile:
        if deltas is None:
            raise UpdateError("turnstile windowed ingestion needs deltas")
        if len(deltas) != len(items):
            raise UpdateError("windowed ingestion needs one delta per item")
    elif deltas is not None:
        raise UpdateError("insertion-only windowed ingestion takes no deltas")
    work = _window_shard_ranges(epochs, workers, shards)
    if not work:
        return window
    if len(work) == 1:
        start, stop = work[0]
        window.ingest_timestamped(
            epochs[start:stop],
            items[start:stop],
            None if deltas is None else deltas[start:stop],
            batch_size=batch_size,
        )
        return window
    payloads = []
    for start, stop in work:
        runs = [
            (
                epoch,
                items[start + run_start : start + run_stop],
                None
                if deltas is None
                else deltas[start + run_start : start + run_stop],
            )
            for epoch, run_start, run_stop in epoch_runs(epochs[start:stop])
        ]
        payloads.append(
            ("sketch", window.template_bytes, window.turnstile, runs, batch_size)
        )
    results = _run_window_payloads(payloads, workers, execution, executor)
    for shard_result in results:
        window.load_epoch_sketches(
            (epoch, serialize.loads(blob)) for epoch, blob in shard_result
        )
    return window


def parallel_ingest_windowed_keyed(
    window,
    epochs,
    keys,
    items,
    deltas=None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    batch_size: Optional[int] = None,
    execution: Optional[str] = None,
    executor: Optional[Executor] = None,
):
    """Shard a timestamped *keyed* stream by epoch range into a windowed store.

    The :class:`~repro.window.windowed.WindowedSketchStore` counterpart
    of :func:`parallel_ingest_windowed`: each worker builds whole epoch
    *stores* from the ring's empty store template via grouped vectorized
    ingestion, and the coordinator adopts them in epoch order.  Epochs
    never span shards, so — as with key-range sharding — the result is
    exact for max/OR families and additive turnstile families alike.
    """
    from .window.windowed import WindowedSketchStore, epoch_runs

    if not isinstance(window, WindowedSketchStore):
        raise ParameterError(
            "parallel_ingest_windowed_keyed expects a WindowedSketchStore"
        )
    if len(keys) != len(items):
        raise ParameterError("windowed keyed ingestion needs one key per item")
    if len(epochs) != len(items):
        raise ParameterError("windowed ingestion needs one epoch per update")
    if deltas is not None and len(deltas) != len(items):
        raise ParameterError("windowed keyed ingestion needs one delta per item")
    work = _window_shard_ranges(epochs, workers, shards)
    if not work:
        return window
    if len(work) == 1:
        start, stop = work[0]
        window.ingest_timestamped(
            epochs[start:stop],
            keys[start:stop],
            items[start:stop],
            None if deltas is None else deltas[start:stop],
            batch_size=batch_size,
        )
        return window
    payloads = []
    for start, stop in work:
        runs = [
            (
                epoch,
                keys[start + run_start : start + run_stop],
                items[start + run_start : start + run_stop],
                None
                if deltas is None
                else deltas[start + run_start : start + run_stop],
            )
            for epoch, run_start, run_stop in epoch_runs(epochs[start:stop])
        ]
        payloads.append(
            ("store", window.template_bytes, window.turnstile, runs, batch_size)
        )
    results = _run_window_payloads(payloads, workers, execution, executor)
    for shard_result in results:
        window.load_epoch_sketches(
            (epoch, serialize.loads(blob)) for epoch, blob in shard_result
        )
    return window


_MERGEABLE_CACHE: Optional[Dict[str, bool]] = None
_DETERMINISTIC_CACHE: Dict[str, bool] = {}


def mergeable_f0_names(shard_deterministic_only: bool = False) -> List[str]:
    """Return the registered F0 algorithms usable with sharded ingestion.

    Args:
        shard_deterministic_only: when True, keep only the algorithms
            whose sharded ingest is *bit-identical* to sequential ingest
            (see ``CardinalityEstimator.shard_deterministic``); the
            remainder (currently the default ``knw`` configuration,
            whose Lemma 5 rough-estimator family draws lazily) are
            merge-*compatible* but only approximation-equivalent.
    """
    global _MERGEABLE_CACHE
    if _MERGEABLE_CACHE is None:
        probes = {
            name: make_f0_estimator(name, 1 << 12, 0.25, seed=0)
            for name in f0_algorithm_names()
        }
        _MERGEABLE_CACHE = {
            name: _supports_merge(probe) for name, probe in probes.items()
        }
        _DETERMINISTIC_CACHE.update(
            {
                name: bool(getattr(probe, "shard_deterministic", True))
                for name, probe in probes.items()
            }
        )
    names = [name for name, able in sorted(_MERGEABLE_CACHE.items()) if able]
    if shard_deterministic_only:
        names = [name for name in names if _DETERMINISTIC_CACHE[name]]
    return names


_L0_MERGEABLE_CACHE: Optional[Dict[str, bool]] = None


def mergeable_l0_names() -> List[str]:
    """Return the registered L0 algorithms usable with sharded ingestion.

    Every mergeable L0 sketch in the library is linear with eagerly drawn
    hash functions, so — unlike the F0 side — sharded ingest is always
    *bit-identical* to sequential ingest (no ``shard_deterministic_only``
    filter is needed; see ``TurnstileEstimator.shard_deterministic``).
    """
    global _L0_MERGEABLE_CACHE
    if _L0_MERGEABLE_CACHE is None:
        _L0_MERGEABLE_CACHE = {
            name: _supports_merge(
                make_l0_estimator(name, 1 << 12, 0.25, 1 << 10, seed=0)
            )
            for name in l0_algorithm_names()
        }
    return [name for name, able in sorted(_L0_MERGEABLE_CACHE.items()) if able]
