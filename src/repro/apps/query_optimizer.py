"""Distinct-value (NDV) statistics for query optimisation.

The paper's first motivating application (Selinger et al., Finkelstein et
al.): a query optimiser needs the number of distinct values per column to
estimate selectivities and choose join orders, but a full scan per column
per statistics refresh is too expensive — a one-pass sketch per column is
the standard fix.

:class:`ColumnStatisticsCollector` maintains one KNW sketch per column of a
table, ingests rows one at a time (one pass), and answers the two questions
an optimiser asks:

* the estimated NDV of each column (for selectivity ``1/NDV``);
* the estimated NDV of the *union* of two columns' value sets (via sketch
  merging), from which the classic distinct-value join-size estimate
  ``|R| * |S| / max(NDV_R, NDV_S)`` is derived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..core.knw import KNWDistinctCounter
from ..exceptions import ParameterError
from ..parallel import parallel_merge_shards
from ..vectorize import HAS_NUMPY

__all__ = ["ColumnStatisticsCollector", "JoinEstimate"]


@dataclass
class JoinEstimate:
    """An equi-join size estimate derived from column NDV statistics.

    Attributes:
        left_rows: row count of the left relation.
        right_rows: row count of the right relation.
        left_ndv: estimated distinct values of the left join key.
        right_ndv: estimated distinct values of the right join key.
        estimated_rows: the classic ``|R| |S| / max(NDV_R, NDV_S)`` estimate.
    """

    left_rows: int
    right_rows: int
    left_ndv: float
    right_ndv: float
    estimated_rows: float


class ColumnStatisticsCollector:
    """One-pass NDV statistics over the columns of a table.

    Attributes:
        universe_size: size of the value universe shared by the columns.
        eps: relative-error target of the per-column sketches.
    """

    def __init__(
        self,
        columns: Sequence[str],
        universe_size: int,
        eps: float = 0.05,
        seed: int = 1,
    ) -> None:
        """Create a collector.

        Args:
            columns: column names.
            universe_size: size of the (encoded) value universe.
            eps: relative-error target.
            seed: base seed; every column uses the *same* seed so that the
                per-column sketches are mergeable (needed for union NDV).
        """
        if not columns:
            raise ParameterError("at least one column is required")
        if len(set(columns)) != len(columns):
            raise ParameterError("column names must be unique")
        self.universe_size = universe_size
        self.eps = eps
        self._seed = seed
        self._row_counts: Dict[str, int] = {name: 0 for name in columns}
        # The polynomial rough-estimator family keeps the sketches fully
        # seed-determined, so per-partition sharded ingest and union-NDV
        # merging are bit-identical to serial single-sketch ingestion.
        self._sketches: Dict[str, KNWDistinctCounter] = {
            name: self._new_sketch() for name in columns
        }

    def _new_sketch(self) -> KNWDistinctCounter:
        return KNWDistinctCounter(
            self.universe_size,
            eps=self.eps,
            seed=self._seed,
            rough_uniform_family=False,
        )

    @property
    def columns(self) -> Sequence[str]:
        """The column names being tracked."""
        return list(self._sketches)

    def ingest_row(self, row: Dict[str, Optional[int]]) -> None:
        """Ingest one row: a mapping from column name to encoded value.

        ``None`` values (SQL NULLs) are skipped, matching how real systems
        compute NDV statistics.
        """
        for column, value in row.items():
            if column not in self._sketches:
                raise ParameterError("unknown column %r" % column)
            if value is None:
                continue
            self._sketches[column].update(value)
            self._row_counts[column] += 1

    def ingest_column(self, column: str, values: Sequence[Optional[int]]) -> None:
        """Bulk-ingest one column's values.

        The column form is the statistics-refresh hot path (a full column
        scan per refresh), so non-null values are ingested through the
        sketch's vectorized ``update_batch``; ``None`` values (SQL NULLs)
        are skipped exactly as in :meth:`ingest_row`.
        """
        if column not in self._sketches:
            raise ParameterError("unknown column %r" % column)
        sketch = self._sketches[column]
        non_null = [value for value in values if value is not None]
        if not non_null:
            return
        if HAS_NUMPY:
            # The plain list goes straight to update_batch: its validation
            # turns negatives / non-integers into the same ParameterError
            # the scalar path raises, instead of a dtype-conversion error.
            sketch.update_batch(non_null)
        else:  # pragma: no cover - numpy is a declared dependency
            for value in non_null:
                sketch.update(value)
        self._row_counts[column] += len(non_null)

    def ingest_column_partitions(
        self,
        column: str,
        partitions: Sequence[Sequence[Optional[int]]],
        workers: Optional[int] = None,
    ) -> None:
        """Bulk-ingest one column stored as several partitions, in parallel.

        The statistics-refresh shape of a partitioned table: each
        partition's values are ingested by a worker process into a clone
        of the column's (mergeable, same-seed) sketch and the results
        merge-reduce back — see :mod:`repro.parallel`.  Equivalent to
        calling :meth:`ingest_column` on the concatenation; ``None``
        values (SQL NULLs) are skipped per partition.

        Args:
            column: the column name.
            partitions: one value sequence per table partition.
            workers: worker processes (defaults to the CPU count).
        """
        if column not in self._sketches:
            raise ParameterError("unknown column %r" % column)
        shards = [
            [value for value in partition if value is not None]
            for partition in partitions
        ]
        parallel_merge_shards(self._sketches[column], shards, workers=workers)
        self._row_counts[column] += sum(len(shard) for shard in shards)

    def ndv(self, column: str) -> float:
        """Return the estimated number of distinct values of ``column``."""
        if column not in self._sketches:
            raise ParameterError("unknown column %r" % column)
        return self._sketches[column].estimate()

    def selectivity(self, column: str) -> float:
        """Return the classic equality-predicate selectivity ``1 / NDV``."""
        ndv = max(self.ndv(column), 1.0)
        return 1.0 / ndv

    def union_ndv(self, first: str, second: str) -> float:
        """Return the estimated NDV of the union of two columns' value sets.

        Implemented by merging copies of the two (same-seed) sketches, which
        is exactly the distributed-union use case of mergeable sketches.
        """
        if first not in self._sketches or second not in self._sketches:
            raise ParameterError("unknown column in union_ndv")
        merged = self._new_sketch()
        merged.merge(self._sketches[first])
        merged.merge(self._sketches[second])
        return merged.estimate()

    def join_estimate(self, left: str, right: str) -> JoinEstimate:
        """Return the distinct-value equi-join size estimate for two key columns."""
        left_ndv = self.ndv(left)
        right_ndv = self.ndv(right)
        left_rows = self._row_counts[left]
        right_rows = self._row_counts[right]
        denominator = max(left_ndv, right_ndv, 1.0)
        return JoinEstimate(
            left_rows=left_rows,
            right_rows=right_rows,
            left_ndv=left_ndv,
            right_ndv=right_ndv,
            estimated_rows=left_rows * right_rows / denominator,
        )

    def space_bits(self) -> int:
        """Return the total statistics footprint in bits (all column sketches)."""
        return sum(sketch.space_bits() for sketch in self._sketches.values())
