"""Distinct-value (NDV) statistics for query optimisation.

The paper's first motivating application (Selinger et al., Finkelstein et
al.): a query optimiser needs the number of distinct values per column to
estimate selectivities and choose join orders, but a full scan per column
per statistics refresh is too expensive — a one-pass sketch per column is
the standard fix.

:class:`ColumnStatisticsCollector` keeps its per-column sketches in a
keyed :class:`~repro.store.store.SketchStore` (column name -> sketch
row), ingests either row batches or whole column scans through the
vectorized batch pipeline, and answers the two questions an optimiser
asks:

* the estimated NDV of each column (for selectivity ``1/NDV``);
* the estimated NDV of the *union* of two columns' value sets (via sketch
  merging), from which the classic distinct-value join-size estimate
  ``|R| * |S| / max(NDV_R, NDV_S)`` is derived.

All column sketches share one seed (that is what makes union NDV work),
which is exactly the store's homologous-rows model: with a
struct-of-arrays family (``family="hyperloglog"``, ...) the whole
statistics state is a couple of NumPy matrices and a multi-column refresh
is one grouped sweep; the default ``family="knw"`` keeps the paper's own
estimator per column through the store's object-backed rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..core.knw import KNWDistinctCounter
from ..exceptions import ParameterError
from ..parallel import parallel_merge_shards
from ..store import ObjectSketchArray, SketchStore
from ..vectorize import HAS_NUMPY

__all__ = ["ColumnStatisticsCollector", "JoinEstimate"]


@dataclass
class JoinEstimate:
    """An equi-join size estimate derived from column NDV statistics.

    Attributes:
        left_rows: row count of the left relation.
        right_rows: row count of the right relation.
        left_ndv: estimated distinct values of the left join key.
        right_ndv: estimated distinct values of the right join key.
        estimated_rows: the classic ``|R| |S| / max(NDV_R, NDV_S)`` estimate.
    """

    left_rows: int
    right_rows: int
    left_ndv: float
    right_ndv: float
    estimated_rows: float


class ColumnStatisticsCollector:
    """One-pass NDV statistics over the columns of a table.

    Attributes:
        universe_size: size of the value universe shared by the columns.
        eps: relative-error target of the per-column sketches.
        family: the sketch family backing the column store.
    """

    def __init__(
        self,
        columns: Sequence[str],
        universe_size: int,
        eps: float = 0.05,
        seed: int = 1,
        family: str = "knw",
    ) -> None:
        """Create a collector.

        Args:
            columns: column names.
            universe_size: size of the (encoded) value universe.
            eps: relative-error target.
            seed: base seed; every column uses the *same* seed so that the
                per-column sketches are mergeable (needed for union NDV).
            family: sketch family for the column store.  ``"knw"`` (the
                default) keeps the paper's estimator per column; any
                struct-of-arrays store family
                (:func:`repro.store.families.sketch_array_family_names`)
                or registry name works, as long as it supports merging
                when :meth:`union_ndv` is needed.
        """
        if not columns:
            raise ParameterError("at least one column is required")
        if len(set(columns)) != len(columns):
            raise ParameterError("column names must be unique")
        self.universe_size = universe_size
        self.eps = eps
        self.family = family
        self._seed = seed
        self._row_counts: Dict[str, int] = {name: 0 for name in columns}
        if family == "knw":
            # The polynomial rough-estimator family keeps the sketches fully
            # seed-determined, so per-partition sharded ingest and union-NDV
            # merging are bit-identical to serial single-sketch ingestion.
            self._store = SketchStore(
                ObjectSketchArray(
                    KNWDistinctCounter(
                        universe_size,
                        eps=eps,
                        seed=seed,
                        rough_uniform_family=False,
                    )
                ),
                keys=columns,
            )
        else:
            self._store = SketchStore.for_family(
                family, universe_size, keys=columns, eps=eps, seed=seed
            )

    @property
    def columns(self) -> Sequence[str]:
        """The column names being tracked."""
        return self._store.keys

    @property
    def store(self) -> SketchStore:
        """The keyed sketch store holding the per-column state."""
        return self._store

    def _require_column(self, column: str) -> None:
        if column not in self._store:
            raise ParameterError("unknown column %r" % column)

    def ingest_row(self, row: Dict[str, Optional[int]]) -> None:
        """Ingest one row: a mapping from column name to encoded value.

        ``None`` values (SQL NULLs) are skipped, matching how real systems
        compute NDV statistics.
        """
        for column, value in row.items():
            self._require_column(column)
            if value is None:
                continue
            self._store.update(column, value)
            self._row_counts[column] += 1

    def ingest_column(self, column: str, values: Sequence[Optional[int]]) -> None:
        """Bulk-ingest one column's values.

        The column form is the statistics-refresh hot path (a full column
        scan per refresh), so non-null values are ingested through the
        store's vectorized batch path; ``None`` values (SQL NULLs) are
        skipped exactly as in :meth:`ingest_row`.
        """
        self._require_column(column)
        non_null = [value for value in values if value is not None]
        if not non_null:
            return
        if HAS_NUMPY:
            # The plain list goes straight to the batch path: its validation
            # turns negatives / non-integers into the same ParameterError
            # the scalar path raises, instead of a dtype-conversion error.
            self._store.update_batch(column, non_null)
        else:  # pragma: no cover - numpy is a declared dependency
            for value in non_null:
                self._store.update(column, value)
        self._row_counts[column] += len(non_null)

    def ingest_column_partitions(
        self,
        column: str,
        partitions: Sequence[Sequence[Optional[int]]],
        workers: Optional[int] = None,
    ) -> None:
        """Bulk-ingest one column stored as several partitions, in parallel.

        The statistics-refresh shape of a partitioned table: each
        partition's values are ingested by a worker process (drawn from
        the engine's persistent pool, so repeated refreshes pay pool
        startup once) into a clone of the column's (mergeable,
        same-seed) sketch and the results merge-reduce back — see
        :mod:`repro.parallel`.  Equivalent to calling
        :meth:`ingest_column` on the concatenation; ``None`` values
        (SQL NULLs) are skipped per partition.

        Args:
            column: the column name.
            partitions: one value sequence per table partition.
            workers: worker processes (defaults to the CPUs the process
                may use — see :func:`repro.parallel.default_workers`).
        """
        self._require_column(column)
        shards = [
            [value for value in partition if value is not None]
            for partition in partitions
        ]
        sketch = self._store.sketch(column)
        parallel_merge_shards(sketch, shards, workers=workers)
        # Object-backed rows are the live sketches (write-back is a no-op
        # reassignment); struct-of-arrays rows import the driven state.
        self._store.load_sketch(column, sketch)
        self._row_counts[column] += sum(len(shard) for shard in shards)

    def ndv(self, column: str) -> float:
        """Return the estimated number of distinct values of ``column``."""
        self._require_column(column)
        return self._store.estimate(column)

    def all_ndv(self) -> Dict[str, float]:
        """Return every column's estimated NDV from one bulk state sweep."""
        return self._store.estimate_all()

    def selectivity(self, column: str) -> float:
        """Return the classic equality-predicate selectivity ``1 / NDV``."""
        ndv = max(self.ndv(column), 1.0)
        return 1.0 / ndv

    def union_ndv(self, first: str, second: str) -> float:
        """Return the estimated NDV of the union of two columns' value sets.

        Implemented by merging copies of the two (same-seed) sketches, which
        is exactly the distributed-union use case of mergeable sketches.
        """
        if first not in self._store or second not in self._store:
            raise ParameterError("unknown column in union_ndv")
        merged = self._store.make_sketch()
        merged.merge(self._store.sketch(first))
        merged.merge(self._store.sketch(second))
        return merged.estimate()

    def join_estimate(self, left: str, right: str) -> JoinEstimate:
        """Return the distinct-value equi-join size estimate for two key columns."""
        left_ndv = self.ndv(left)
        right_ndv = self.ndv(right)
        left_rows = self._row_counts[left]
        right_rows = self._row_counts[right]
        denominator = max(left_ndv, right_ndv, 1.0)
        return JoinEstimate(
            left_rows=left_rows,
            right_rows=right_rows,
            left_ndv=left_ndv,
            right_ndv=right_ndv,
            estimated_rows=left_rows * right_rows / denominator,
        )

    def space_bits(self) -> int:
        """Return the total statistics footprint in bits (all column sketches)."""
        return self._store.space_bits()
