"""Data cleaning: discovering similar columns via Hamming-norm sketches.

The paper's L0 motivation (Dasu et al., Cormode et al.): when profiling an
unfamiliar database, one wants to find pairs of columns that store (nearly)
the same values — join-key candidates, denormalised copies, or dirty
duplicates — *without* joining every pair of columns.  Because L0 sketches
are linear (each update adds a value to a few counters), the sketch of the
difference of two columns is obtained by feeding one column with ``+1``
updates and the other with ``-1`` updates into the *same* sketch; its L0 is
then the number of values whose multiplicities differ, which is small
exactly for similar columns, regardless of row order.

:class:`SimilarColumnFinder` maintains one KNW L0 sketch per column (all
built from one shared seed so they are comparable), and reports, for any
pair, the estimated Hamming distance between their value multisets plus a
normalised similarity score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import ParameterError
from ..l0.knw_l0 import KNWHammingNormEstimator
from ..parallel import discard_shared, get_pool, load_shared, stage_shared

__all__ = ["SimilarColumnFinder", "ColumnPairReport"]


@dataclass
class ColumnPairReport:
    """Similarity report for one pair of columns.

    Attributes:
        first: name of the first column.
        second: name of the second column.
        hamming_estimate: estimated number of values with differing multiplicities.
        similarity: ``1 - hamming / (|first| + |second|)``, clamped to [0, 1];
            1.0 means the multisets are (estimated to be) identical.
    """

    first: str
    second: str
    hamming_estimate: float
    similarity: float


def _pair_hamming_worker(task: Tuple[str, Tuple[str, str]]) -> float:
    """Worker body: build one pair's difference sketch, return its L0.

    Module-level so the process pool can import it by reference.  Each
    pair is independent (its own one-pass difference sketch), which makes
    the all-pairs profile embarrassingly parallel — the right axis for
    turnstile sketches, which do not merge.  The profiling context (the
    full column store plus sketch parameters) is staged once on disk and
    each task carries only its token and two column names; workers load
    the context once per process (:func:`repro.parallel.load_shared`).
    """
    token, pair = task
    universe_size, eps, seed, magnitude_bound, columns = load_shared(token)
    plus = columns[pair[0]]
    minus = columns[pair[1]]
    sketch = KNWHammingNormEstimator(
        universe_size, eps=eps, magnitude_bound=magnitude_bound, seed=seed
    )
    sketch.update_batch(plus, [1] * len(plus))
    sketch.update_batch(minus, [-1] * len(minus))
    return sketch.estimate()


class SimilarColumnFinder:
    """Pairwise column similarity via difference-of-columns L0 sketches.

    Attributes:
        universe_size: size of the encoded value universe.
        eps: relative-error target of the sketches.
    """

    def __init__(
        self,
        universe_size: int,
        eps: float = 0.1,
        seed: int = 17,
        magnitude_bound: int = 1 << 20,
    ) -> None:
        """Create the finder.

        Args:
            universe_size: size of the encoded value universe.
            eps: relative-error target for the Hamming estimates.
            seed: shared seed (per-pair difference sketches are rebuilt from
                the stored column values, so the seed only needs to make
                runs reproducible).
            magnitude_bound: upper bound on any value's multiplicity difference.
        """
        if universe_size < 2:
            raise ParameterError("universe_size must be at least 2")
        self.universe_size = universe_size
        self.eps = eps
        self.seed = seed
        self.magnitude_bound = magnitude_bound
        self._columns: Dict[str, List[int]] = {}

    def add_column(self, name: str, values: Sequence[int]) -> None:
        """Register a column (its values are kept for pairwise sketching).

        Values are retained because each *pair* needs its own difference
        sketch; in a production deployment one would instead keep one
        sketch per column and subtract sketches directly (the sketches are
        linear), which :meth:`pair_report_streaming` demonstrates.
        """
        if name in self._columns:
            raise ParameterError("column %r already added" % name)
        for value in values:
            if not 0 <= value < self.universe_size:
                raise ParameterError("column value outside the declared universe")
        self._columns[name] = list(values)

    @property
    def column_names(self) -> List[str]:
        """Names of the registered columns."""
        return list(self._columns)

    def _difference_sketch(self, first: str, second: str) -> KNWHammingNormEstimator:
        sketch = KNWHammingNormEstimator(
            self.universe_size,
            eps=self.eps,
            magnitude_bound=self.magnitude_bound,
            seed=self.seed,
        )
        plus = self._columns[first]
        minus = self._columns[second]
        sketch.update_batch(plus, [1] * len(plus))
        sketch.update_batch(minus, [-1] * len(minus))
        return sketch

    def _build_report(self, first: str, second: str, hamming: float) -> ColumnPairReport:
        """Normalise a pair's Hamming estimate into its similarity report."""
        total = len(self._columns[first]) + len(self._columns[second])
        similarity = 1.0 - min(hamming / total, 1.0) if total else 1.0
        return ColumnPairReport(
            first=first, second=second, hamming_estimate=hamming, similarity=similarity
        )

    def pair_report(self, first: str, second: str) -> ColumnPairReport:
        """Return the similarity report for one pair of registered columns."""
        if first not in self._columns or second not in self._columns:
            raise ParameterError("both columns must be registered before comparison")
        sketch = self._difference_sketch(first, second)
        return self._build_report(first, second, sketch.estimate())

    def pair_report_streaming(
        self, first_values: Sequence[int], second_values: Sequence[int]
    ) -> float:
        """Return the Hamming estimate for two unregistered value streams.

        This is the one-pass formulation: both streams are fed into a
        single sketch with opposite signs (no values are stored), exactly
        as a scan over two remote tables would do it.
        """
        sketch = KNWHammingNormEstimator(
            self.universe_size,
            eps=self.eps,
            magnitude_bound=self.magnitude_bound,
            seed=self.seed,
        )
        for value in first_values:
            sketch.update(value, 1)
        for value in second_values:
            sketch.update(value, -1)
        return sketch.estimate()

    def all_pair_reports(
        self, workers: Optional[int] = None
    ) -> List[ColumnPairReport]:
        """Return similarity reports for every registered column pair.

        Args:
            workers: when > 1, profile the pairs over this many worker
                processes (one difference sketch per pair per worker);
                results are identical to the serial loop — every sketch
                is seeded — and arrive in the same deterministic pair
                order.
        """
        names = list(self._columns)
        pairs = [
            (first, second)
            for index, first in enumerate(names)
            for second in names[index + 1 :]
        ]
        if workers is None or workers <= 1 or len(pairs) <= 1:
            return [self.pair_report(first, second) for first, second in pairs]
        token = stage_shared(
            (
                self.universe_size,
                self.eps,
                self.seed,
                self.magnitude_bound,
                self._columns,
            )
        )
        try:
            pool = get_pool(workers)
            estimates = list(
                pool.map(_pair_hamming_worker, [(token, pair) for pair in pairs])
            )
        finally:
            discard_shared(token)
        return [
            self._build_report(first, second, hamming)
            for (first, second), hamming in zip(pairs, estimates)
        ]

    def most_similar_pairs(
        self, top: int = 5, workers: Optional[int] = None
    ) -> List[ColumnPairReport]:
        """Return the ``top`` most similar registered column pairs.

        Args:
            top: number of pairs to return.
            workers: forwarded to :meth:`all_pair_reports` — the
                all-pairs profile is the quadratic hot spot of database
                profiling, so it is the axis worth parallelising.
        """
        if top <= 0:
            raise ParameterError("top must be positive")
        reports = self.all_pair_reports(workers=workers)
        reports.sort(key=lambda report: report.similarity, reverse=True)
        return reports[:top]
