"""Network traffic monitoring: distinct flows, port scans, and worm spread.

The paper's second motivating application (Estan et al., Akella et al.):
a router tracks the number of distinct destination IPs, source/destination
pairs, or flows on a link with a small, constant-time-per-packet sketch.
A sudden jump in distinct destinations contacted by one source is the
signature of a port scan; a jump in distinct sources hitting one service
is the signature of a DDoS or worm spread (the Code Red measurement the
paper cites).

:class:`FlowCardinalityMonitor` keeps one *sliding-window ring* of KNW
sketches per tracked dimension (:class:`repro.window.windowed
.WindowedSketch`): each reporting window is an epoch, closed epochs stay
queryable for ``window_history`` windows, and "distinct flows over the
last ``k`` windows" is answered by exact merge-rollup
(:meth:`distinct_flows_last`) instead of the old reset-and-forget
per-window scalars.  The per-source fan-out detector rides the same
ring as a :class:`repro.window.windowed.WindowedSketchStore` of
linear-counting bitmaps, so scan fan-outs are queryable over multi-window
spans too.  With ``track_active_flows=True`` the monitor additionally
maintains a turnstile L0 sketch of the *currently open* flows (flow-open
events insert, flow-close events delete), fed through the vectorized
turnstile batch pipeline — the paper's Section 4 deletion capability as
a monitoring feature.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from ..core.fast_knw import FastKNWDistinctCounter
from ..core.knw import KNWDistinctCounter
from ..estimators.base import SerializableState
from ..exceptions import ParameterError, PersistenceError
from ..l0.knw_l0 import KNWHammingNormEstimator
from ..parallel import parallel_merge_shards
from ..store import LinearCountingSketchArray, SketchStore
from ..streams.datasets import FlowRecord
from ..vectorize import HAS_NUMPY, np
from ..window import WindowedSketch, WindowedSketchStore

__all__ = ["FlowCardinalityMonitor", "WindowReport"]


@dataclass
class WindowReport:
    """Per-window summary emitted when the monitor rolls its window.

    Attributes:
        window_index: 0-based index of the completed window.
        packets: packets observed in the window.
        distinct_flows: estimated distinct (src, dst, port) flows.
        distinct_sources: estimated distinct source addresses.
        distinct_destinations: estimated distinct destination addresses.
        scan_suspects: sources whose per-window destination fan-out
            exceeded the scan threshold.
    """

    window_index: int
    packets: int
    distinct_flows: float
    distinct_sources: float
    distinct_destinations: float
    scan_suspects: List[int]


class FlowCardinalityMonitor(SerializableState):
    """Streaming monitor of distinct-flow statistics over packet windows.

    Each reporting window is one epoch of four sliding-window rings
    (flows, sources, destinations, per-source fan-out); completed windows
    stay queryable for ``window_history`` windows via the rolling
    ``*_last(k)`` methods, answered by exact merge-rollup rather than by
    re-observing any traffic.

    With ``persist_dir=`` the monitor becomes durable: every observed
    packet batch and window roll is write-ahead logged through a
    :class:`~repro.durability.Checkpointer` before it is acknowledged,
    a full snapshot is taken at each window roll (sealing and compacting
    the log), and constructing over a non-empty directory *recovers* —
    the new monitor resumes bit-identically from the last durably
    acknowledged record, mid-window state included.  :attr:`last_recovery`
    carries the :class:`~repro.durability.RecoveryReport` of that
    construction-time recovery (``None`` on a fresh directory).

    Attributes:
        universe_size: size of the identifier universe flows are folded into.
        eps: relative-error target for the sketches.
        scan_fanout_threshold: per-source distinct-destination count above
            which the source is flagged as a scan suspect.
        window_history: windows retained per ring (open window included).
    """

    #: Replay methods :func:`repro.durability.checkpoint.apply_delta` may
    #: invoke from ``op == "call"`` log records.  Everything the durable
    #: monitor mutates goes through exactly these three, so the log is a
    #: complete transcript of the monitor's evolution.
    WAL_METHODS = ("_wal_packets", "_wal_roll", "_wal_flow_events")

    #: Runtime-only attributes excluded from snapshots: the checkpointer
    #: holds an open log (unserializable by design), and the recovery
    #: report describes *this process's* startup, not monitor state.
    _EPHEMERAL = ("_checkpointer", "_recovery_report")

    #: Class-level defaults so revived instances (whose snapshots never
    #: contain the ephemeral fields) still resolve the attributes.
    _checkpointer: Optional[Any] = None
    _recovery_report: Optional[Any] = None

    def __init__(
        self,
        universe_size: int = 1 << 20,
        eps: float = 0.05,
        window_packets: int = 10_000,
        scan_fanout_threshold: int = 256,
        seed: int = 1,
        mergeable: bool = False,
        track_active_flows: bool = False,
        window_history: int = 8,
        persist_dir: Optional[str] = None,
    ) -> None:
        """Create the monitor.

        Args:
            universe_size: identifier universe for the sketches.
            eps: relative-error target.
            window_packets: number of packets per reporting window.
            scan_fanout_threshold: distinct-destination fan-out that flags a
                source as a likely scanner within one window.
            seed: RNG seed for all sketches.
            mergeable: build the per-window sketches as mergeable
                :class:`~repro.core.knw.KNWDistinctCounter` instances
                instead of the O(1)-time fast variant (which does not
                merge).  Required for :meth:`ingest_window_shards` (the
                per-link sharded deployment where several taps' traffic
                is union-counted) and for the multi-window rolling
                queries (:meth:`distinct_flows_last` with ``k > 1``).
            track_active_flows: additionally maintain a turnstile L0
                sketch of the *currently open* flows — flow-open events
                insert, flow-close events delete — queried via
                :meth:`active_flow_estimate`.  The sketch is long-lived
                (it does not roll with the packet windows: a flow opened
                in one window may close many windows later), which is
                exactly why the deletion path needs the L0 machinery
                rather than an F0 sketch.
            window_history: number of reporting windows each sliding ring
                retains (the open window included); the rolling queries
                accept any width up to this.
            persist_dir: durably log every mutation to this directory
                (write-ahead log + per-window snapshots).  A non-empty
                directory is *recovered from* instead of overwritten:
                the construction parameters are replaced by the persisted
                monitor's state and ingestion resumes where the log ends.
                Incompatible with :meth:`ingest_window_shards` (in-place
                parallel merges bypass the log).  Call :meth:`close` (or
                use the monitor as a context manager) to release the
                directory lock.
        """
        if window_packets <= 0:
            raise ParameterError("window_packets must be positive")
        if scan_fanout_threshold <= 0:
            raise ParameterError("scan_fanout_threshold must be positive")
        if window_history <= 0:
            raise ParameterError("window_history must be positive")
        self.universe_size = universe_size
        self.eps = eps
        self.window_packets = window_packets
        self.scan_fanout_threshold = scan_fanout_threshold
        self.mergeable = mergeable
        self.window_history = window_history
        self._seed = seed
        self._window_index = 0
        self._packets_in_window = 0
        self._reports: List[WindowReport] = []
        self._active_flows: Optional[KNWHammingNormEstimator] = None
        if track_active_flows:
            self._active_flows = KNWHammingNormEstimator(
                universe_size, eps=eps, seed=seed + 4
            )
        if mergeable:
            # The polynomial rough-estimator family keeps the sketch fully
            # seed-determined (shard_deterministic), so per-link sharded
            # windows are bit-identical to observing the union serially
            # and the window rollups merge exactly.
            def sketch(sketch_seed):
                return KNWDistinctCounter(
                    universe_size,
                    eps=eps,
                    seed=sketch_seed,
                    rough_uniform_family=False,
                )
        else:
            def sketch(sketch_seed):
                return FastKNWDistinctCounter(
                    universe_size, eps=eps, seed=sketch_seed
                )
        # One sliding-window ring per tracked dimension: each reporting
        # window is one epoch, so closed windows stay queryable as exact
        # merge-rollups for window_history windows instead of being
        # thrown away at every roll.
        self._flows = WindowedSketch(sketch(seed), retention=window_history)
        self._sources = WindowedSketch(sketch(seed + 1), retention=window_history)
        self._destinations = WindowedSketch(
            sketch(seed + 2), retention=window_history
        )
        # Per-source fan-out bitmaps are intentionally tiny: the detector
        # only needs to notice fan-outs in the hundreds, so a small
        # linear-counting bitmap per active source suffices.  They live in
        # a keyed sketch store — one (sources x bits) bit-plane matrix per
        # window epoch — so a window's whole packet batch updates every
        # active source's bitmap in one grouped vectorized sweep instead
        # of one Python call per source.
        self._fanout_bits = max(8 * scan_fanout_threshold, 1024)
        self._fanout_store = WindowedSketchStore(
            SketchStore(
                LinearCountingSketchArray(
                    universe_size, bits=self._fanout_bits, seed=seed + 3
                )
            ),
            retention=window_history,
        )
        self._checkpointer = None
        self._recovery_report = None
        if persist_dir is not None:
            self._attach_persistence(persist_dir)

    # -- durable persistence --------------------------------------------------

    def _attach_persistence(self, persist_dir: str) -> None:
        """Open (or recover) the durable log and bind it to this instance."""
        from ..durability import Checkpointer

        checkpointer, report = Checkpointer.open(persist_dir, lambda: self)
        if checkpointer.target is not self:
            # The directory held prior state: adopt the recovered monitor
            # wholesale (its sketches ARE the durable state) and point the
            # checkpointer back at this instance.
            recovered = checkpointer.target
            if type(recovered) is not FlowCardinalityMonitor:
                checkpointer.close()
                raise PersistenceError(
                    "persist_dir %r holds a durable %s, not a "
                    "FlowCardinalityMonitor"
                    % (persist_dir, type(recovered).__name__)
                )
            self.__dict__.clear()
            self.__dict__.update(recovered.__dict__)
            checkpointer.target = self
        self._checkpointer = checkpointer
        self._recovery_report = report

    @property
    def persistent(self) -> bool:
        """Whether this monitor write-ahead logs to a durable directory."""
        return self._checkpointer is not None

    @property
    def last_recovery(self) -> Optional[Any]:
        """The construction-time :class:`~repro.durability.RecoveryReport`.

        ``None`` for a non-persistent monitor or a fresh directory.
        """
        return self._recovery_report

    @contextmanager
    def _detached(self):
        """Temporarily strip runtime-only fields for snapshot capture."""
        stash = {
            name: self.__dict__.pop(name)
            for name in self._EPHEMERAL
            if name in self.__dict__
        }
        try:
            yield
        finally:
            self.__dict__.update(stash)

    def state_dict(self):
        with self._detached():
            return super().state_dict()

    def to_bytes(self) -> bytes:
        with self._detached():
            return super().to_bytes()

    def close(self) -> None:
        """Snapshot (if persistent) and release the durable-log lock."""
        if self._checkpointer is not None:
            self._checkpointer.snapshot()
            self._checkpointer.close()
            self._checkpointer = None

    def __enter__(self) -> "FlowCardinalityMonitor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _packet_arrays(self, records: Sequence[FlowRecord]) -> Tuple[Any, ...]:
        """Extract the four WAL-record arrays for one in-window packet slice."""
        universe = self.universe_size
        if not HAS_NUMPY:  # pragma: no cover - numpy is a declared dependency
            return (
                [record.flow_id(universe) for record in records],
                [record.source % universe for record in records],
                [record.destination % universe for record in records],
                [record.source for record in records],
            )
        count = len(records)
        return (
            np.fromiter(
                (record.flow_id(universe) for record in records),
                dtype=np.uint64,
                count=count,
            ),
            np.fromiter(
                (record.source % universe for record in records),
                dtype=np.uint64,
                count=count,
            ),
            np.fromiter(
                (record.destination % universe for record in records),
                dtype=np.uint64,
                count=count,
            ),
            np.fromiter(
                (record.source for record in records), dtype=np.int64, count=count
            ),
        )

    def _wal_packets(self, flow_ids, sources, destinations, raw_sources) -> None:
        """Replay method: ingest one in-window packet slice from log arrays."""
        if len(flow_ids):
            self._flows.update_batch(flow_ids)
            self._sources.update_batch(sources)
            self._destinations.update_batch(destinations)
            self._fanout_store.update_grouped(raw_sources, destinations)
        self._packets_in_window += len(flow_ids)

    def _wal_roll(self) -> None:
        """Replay method: close the current window."""
        self._roll_window()

    def _wal_flow_events(self, flow_ids, deltas) -> None:
        """Replay method: batched flow open/close events from log arrays."""
        self._require_active_flows().update_batch(flow_ids, deltas)

    def _close_window(self) -> WindowReport:
        """Roll the window, durably logging the roll when persistent."""
        if self._checkpointer is None:
            return self._roll_window()
        self._checkpointer.call("_wal_roll")
        # A window roll is the natural checkpoint: snapshot, seal the
        # segment, and compact, so recovery replays at most one window.
        self._checkpointer.snapshot()
        return self._reports[-1]

    def observe(self, record: FlowRecord) -> Optional[WindowReport]:
        """Process one packet header; returns a report when a window closes."""
        if self._checkpointer is not None:
            # Persistent monitors route scalars through the (bit-identical)
            # batched WAL path so live and replayed state match exactly.
            reports = self.observe_batch([record])
            return reports[0] if reports else None
        flow_id = record.flow_id(self.universe_size)
        self._flows.update(flow_id)
        self._sources.update(record.source % self.universe_size)
        self._destinations.update(record.destination % self.universe_size)
        self._fanout_store.update(
            record.source, record.destination % self.universe_size
        )

        self._packets_in_window += 1
        if self._packets_in_window >= self.window_packets:
            return self._roll_window()
        return None

    def observe_batch(self, records: Sequence[FlowRecord]) -> List[WindowReport]:
        """Process a chunk of packet headers at once.

        The batch counterpart of :meth:`observe`: equivalent to calling it
        per record (windows still roll at exactly ``window_packets``
        packets — the chunk is split at window boundaries), but the three
        per-window distinct-count sketches ingest each window slice through
        their vectorized ``update_batch``, and the whole slice updates the
        per-source fan-out store in one grouped vectorized sweep
        (:meth:`repro.store.store.SketchStore.update_grouped`).

        Args:
            records: packet headers in arrival order.

        Returns:
            The reports of every window completed within this batch (empty
            when no window boundary was crossed).
        """
        reports: List[WindowReport] = []
        position = 0
        total = len(records)
        while position < total:
            room = self.window_packets - self._packets_in_window
            window_slice = records[position : position + room]
            position += len(window_slice)
            if self._checkpointer is not None:
                # One WAL record per in-window slice: apply-then-log with
                # the decoded arrays (see Checkpointer._commit), so replay
                # reproduces this exact ingestion bit for bit.
                self._checkpointer.call(
                    "_wal_packets", *self._packet_arrays(window_slice)
                )
            else:
                self._observe_slice(window_slice)
                self._packets_in_window += len(window_slice)
            if self._packets_in_window >= self.window_packets:
                reports.append(self._close_window())
        return reports

    def _observe_slice(self, records: Sequence[FlowRecord]) -> None:
        """Ingest records known to fall inside the current window."""
        if not HAS_NUMPY:  # pragma: no cover - numpy is a declared dependency
            for record in records:
                flow_id = record.flow_id(self.universe_size)
                self._flows.update(flow_id)
                self._sources.update(record.source % self.universe_size)
                self._destinations.update(record.destination % self.universe_size)
            self._observe_fanout(records)
            return
        universe = self.universe_size
        flow_ids = np.fromiter(
            (record.flow_id(universe) for record in records),
            dtype=np.uint64,
            count=len(records),
        )
        sources = np.fromiter(
            (record.source % universe for record in records),
            dtype=np.uint64,
            count=len(records),
        )
        destinations = np.fromiter(
            (record.destination % universe for record in records),
            dtype=np.uint64,
            count=len(records),
        )
        self._flows.update_batch(flow_ids)
        self._sources.update_batch(sources)
        self._destinations.update_batch(destinations)
        self._observe_fanout(records)

    def ingest_window_shards(
        self,
        links: Sequence[Sequence[FlowRecord]],
        workers: Optional[int] = None,
    ) -> WindowReport:
        """Ingest one reporting window observed as per-link traffic shards.

        The distributed deployment of the paper's introduction: each
        network link (tap) contributes the packets it saw during the
        window, worker processes ingest each link's packets into
        same-seed sketch clones through the vectorized batch pipeline,
        and the union counts come from merge-reducing the link sketches
        (:mod:`repro.parallel`).  The per-source fan-out detector runs on
        the coordinator over all links, since a scanning source's fan-out
        is only visible in the union.

        The whole call is one window: it closes with a report regardless
        of ``window_packets`` (links are unordered, so a mid-link window
        boundary would be ill-defined).  Requires ``mergeable=True`` and
        an empty current window.

        Args:
            links: one packet-record sequence per link.
            workers: worker processes (defaults to the CPUs the process
                may use — see :func:`repro.parallel.default_workers`).

        Returns:
            The completed window's report.
        """
        if not self.mergeable:
            raise ParameterError(
                "per-link sharded ingestion needs mergeable sketches; "
                "construct the monitor with mergeable=True"
            )
        if self._checkpointer is not None:
            raise ParameterError(
                "ingest_window_shards is incompatible with persist_dir: "
                "in-place parallel merges bypass the write-ahead log; "
                "ingest through observe_batch instead"
            )
        if self._packets_in_window:
            raise ParameterError(
                "ingest_window_shards expects an empty current window; "
                "flush() the partial window first"
            )
        universe = self.universe_size

        def field_shards(extract) -> List["object"]:
            if HAS_NUMPY:
                return [
                    np.fromiter(
                        (extract(record) for record in link),
                        dtype=np.uint64,
                        count=len(link),
                    )
                    for link in links
                ]
            return [[extract(record) for record in link] for link in links]

        fields = [
            (self._flows.current, field_shards(lambda r: r.flow_id(universe))),
            (self._sources.current, field_shards(lambda r: r.source % universe)),
            (
                self._destinations.current,
                field_shards(lambda r: r.destination % universe),
            ),
        ]
        # The engine's persistent pool serves all three field sketches —
        # and every later window: pool startup is paid once per process,
        # not once per window (or per field).
        for sketch, shards in fields:
            parallel_merge_shards(sketch, shards, workers=workers)
        for link in links:
            self._observe_fanout(link)
        self._packets_in_window = sum(len(link) for link in links)
        return self._roll_window()

    # -- active-flow (deletion) tracking -------------------------------------------

    def _require_active_flows(self) -> KNWHammingNormEstimator:
        if self._active_flows is None:
            raise ParameterError(
                "active-flow tracking is off; construct the monitor with "
                "track_active_flows=True"
            )
        return self._active_flows

    def observe_flow_open(self, record: FlowRecord) -> None:
        """Record a flow-establishment event (e.g. a TCP SYN): ``x_flow += 1``."""
        if self._checkpointer is not None:
            self.observe_flow_events_batch([record], [1])
            return
        self._require_active_flows().update(record.flow_id(self.universe_size), 1)

    def observe_flow_close(self, record: FlowRecord) -> None:
        """Record a flow-teardown event (e.g. a FIN/RST): ``x_flow -= 1``."""
        if self._checkpointer is not None:
            self.observe_flow_events_batch([record], [-1])
            return
        self._require_active_flows().update(record.flow_id(self.universe_size), -1)

    def observe_flow_events_batch(
        self, records: Sequence[FlowRecord], deltas: Sequence[int]
    ) -> None:
        """Ingest a chunk of flow open/close events through the batched L0 path.

        The deletion-path counterpart of :meth:`observe_batch`: one signed
        delta per record (``+1`` open, ``-1`` close), driven through the
        vectorized turnstile ``update_batch`` pipeline — bit-identical to
        calling :meth:`observe_flow_open` / :meth:`observe_flow_close`
        per event, at batch throughput.
        """
        sketch = self._require_active_flows()
        if len(records) != len(deltas):
            raise ParameterError(
                "observe_flow_events_batch needs one delta per record"
            )
        if not HAS_NUMPY:  # pragma: no cover - numpy is a declared dependency
            if self._checkpointer is not None:
                flow_ids = [record.flow_id(self.universe_size) for record in records]
                self._checkpointer.call(
                    "_wal_flow_events", flow_ids, [int(delta) for delta in deltas]
                )
                return
            for record, delta in zip(records, deltas):
                sketch.update(record.flow_id(self.universe_size), int(delta))
            return
        universe = self.universe_size
        flow_ids = np.fromiter(
            (record.flow_id(universe) for record in records),
            dtype=np.uint64,
            count=len(records),
        )
        signed = np.asarray(deltas, dtype=np.int64)
        if self._checkpointer is not None:
            self._checkpointer.call("_wal_flow_events", flow_ids, signed)
            return
        sketch.update_batch(flow_ids, signed)

    def active_flow_estimate(self) -> float:
        """Return the estimated number of currently open flows (L0)."""
        return self._require_active_flows().estimate()

    def _observe_fanout(self, records: Sequence[FlowRecord]) -> None:
        """Feed the per-source fan-out store in one grouped vectorized sweep."""
        if not records:
            return
        universe = self.universe_size
        if not HAS_NUMPY:  # pragma: no cover - numpy is a declared dependency
            for record in records:
                self._fanout_store.update(
                    record.source, record.destination % universe
                )
            return
        sources = np.fromiter(
            (record.source for record in records),
            dtype=np.int64,
            count=len(records),
        )
        destinations = np.fromiter(
            (record.destination % universe for record in records),
            dtype=np.uint64,
            count=len(records),
        )
        self._fanout_store.update_grouped(sources, destinations)

    def _roll_window(self) -> WindowReport:
        suspects = [
            source
            for source, estimate in self._fanout_store.estimate_current().items()
            if estimate >= self.scan_fanout_threshold
        ]
        report = WindowReport(
            window_index=self._window_index,
            packets=self._packets_in_window,
            distinct_flows=self._flows.estimate_current(),
            distinct_sources=self._sources.estimate_current(),
            distinct_destinations=self._destinations.estimate_current(),
            scan_suspects=sorted(suspects),
        )
        self._reports.append(report)
        self._window_index += 1
        self._packets_in_window = 0
        # The completed window stays queryable: rolling just advances the
        # four epoch rings (evicting beyond window_history).
        self._flows.advance_epoch()
        self._sources.advance_epoch()
        self._destinations.advance_epoch()
        self._fanout_store.advance_epoch()
        return report

    def flush(self) -> Optional[WindowReport]:
        """Close the current (possibly partial) window and return its report."""
        if self._packets_in_window == 0:
            return None
        return self._close_window()

    @property
    def reports(self) -> List[WindowReport]:
        """All window reports emitted so far."""
        return list(self._reports)

    def current_distinct_flows(self) -> float:
        """Return the running estimate of distinct flows in the open window."""
        return self._flows.estimate_current()

    # -- rolling multi-window queries ------------------------------------------------

    def retained_windows(self) -> int:
        """Number of windows currently queryable (the open one included)."""
        return self._flows.retained_epochs

    def distinct_flows_last(self, windows: int) -> float:
        """Estimate distinct flows over the newest ``windows`` windows.

        The open (partial) window counts as one; ``windows`` may reach
        :meth:`retained_windows`.  Widths above 1 merge-rollup the ring's
        closed epochs, which requires ``mergeable=True``.
        """
        return self._flows.estimate_window(windows)

    def distinct_sources_last(self, windows: int) -> float:
        """Estimate distinct source addresses over the newest ``windows`` windows."""
        return self._sources.estimate_window(windows)

    def distinct_destinations_last(self, windows: int) -> float:
        """Estimate distinct destination addresses over the newest ``windows`` windows."""
        return self._destinations.estimate_window(windows)

    def fanout_last(self, windows: int) -> dict:
        """Per-source distinct-destination fan-out over the newest ``windows`` windows.

        The multi-window scan view: a slow scanner that stays under the
        per-window threshold still accumulates fan-out across the rolled
        windows.  Returns every in-window source's estimate.
        """
        return self._fanout_store.estimate_window(windows)
