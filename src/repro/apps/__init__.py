"""Database-domain applications built on the public estimator API.

These implement the three motivating scenarios from the paper's
introduction:

* :mod:`repro.apps.query_optimizer` — distinct-value statistics for query
  planning (selectivity and join-size estimates).
* :mod:`repro.apps.network_monitor` — distinct flows / port-scan and
  DDoS-spread detection on packet streams.
* :mod:`repro.apps.data_cleaning` — similar-column discovery via
  Hamming-norm (L0) sketches of column differences.
"""

from .data_cleaning import ColumnPairReport, SimilarColumnFinder
from .network_monitor import FlowCardinalityMonitor, WindowReport
from .query_optimizer import ColumnStatisticsCollector, JoinEstimate

__all__ = [
    "ColumnPairReport",
    "SimilarColumnFinder",
    "FlowCardinalityMonitor",
    "WindowReport",
    "ColumnStatisticsCollector",
    "JoinEstimate",
]
